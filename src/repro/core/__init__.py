"""The paper's core contribution (DESIGN.md S13-S24).

* :mod:`repro.core.rcl` - RCL-A random-clustering summarizer (§3).
* :mod:`repro.core.lrw` - LRW-A L-length random-walk summarizer (§4).
* :mod:`repro.core.propagation` - personalized propagation index (§5.1).
* :mod:`repro.core.search` - top-k PIT-Search (§5.2), array-native.
* :mod:`repro.core.serving` - bounded caches for the online serving layer.
* :mod:`repro.core.engine` - end-to-end facade.
"""

from ._scalar_search import ScalarReferenceSearcher
from .diagnostics import (
    CacheStats,
    PropagationBuildStats,
    SummaryBuildStats,
    SummaryDiagnostics,
    diagnose_summary,
    diagnostics_table,
)
from .dynamics import (
    DeltaApplication,
    GraphDelta,
    TopicUpdate,
    affected_nodes,
    apply_delta_to_graph,
    apply_graph_delta,
    apply_topic_update,
    invalidate_propagation,
    refresh_walk_index,
    updated_topic_index,
)
from .engine import PITEngine
from .persistence import (
    load_propagation_index,
    load_summaries,
    load_walk_index,
    save_propagation_index,
    save_summaries,
    save_walk_index,
)
from .influence import (
    enumerate_simple_paths,
    propagate_influence,
    simple_path_influence,
    source_vector,
    topic_influence_vector,
)
from .lrw import LRWSummarizer
from .propagation import (
    GammaView,
    InMemoryBackend,
    PropagationEntry,
    PropagationIndex,
)
from .precompute import (
    PrecomputeArtifact,
    build_precompute,
    load_precompute,
    save_precompute,
)
from .rcl import RCLSummarizer
from .search import (
    PersonalizedSearcher,
    SearchResult,
    SearchStats,
    normalized_query_key,
)
from .serve_facade import ServingEngine, publish_engine_gauges
from .serving import ByteLRUCache
from .shards import (
    MmapShardBackend,
    load_sharded_index,
    refresh_sharded_index,
    save_sharded_index,
)
from .summarization import (
    SummaryArrays,
    Summarizer,
    TopicSummary,
    summarization_error,
)

__all__ = [
    "PITEngine",
    "ServingEngine",
    "publish_engine_gauges",
    "PrecomputeArtifact",
    "build_precompute",
    "save_precompute",
    "load_precompute",
    "normalized_query_key",
    "RCLSummarizer",
    "LRWSummarizer",
    "Summarizer",
    "TopicSummary",
    "SummaryArrays",
    "summarization_error",
    "PropagationIndex",
    "PropagationEntry",
    "GammaView",
    "InMemoryBackend",
    "MmapShardBackend",
    "PropagationBuildStats",
    "SummaryBuildStats",
    "CacheStats",
    "ByteLRUCache",
    "PersonalizedSearcher",
    "ScalarReferenceSearcher",
    "SearchResult",
    "SearchStats",
    "propagate_influence",
    "topic_influence_vector",
    "source_vector",
    "simple_path_influence",
    "enumerate_simple_paths",
    "SummaryDiagnostics",
    "diagnose_summary",
    "diagnostics_table",
    "GraphDelta",
    "DeltaApplication",
    "apply_delta_to_graph",
    "affected_nodes",
    "apply_graph_delta",
    "TopicUpdate",
    "updated_topic_index",
    "apply_topic_update",
    "invalidate_propagation",
    "refresh_walk_index",
    "save_summaries",
    "load_summaries",
    "save_propagation_index",
    "load_propagation_index",
    "save_sharded_index",
    "load_sharded_index",
    "refresh_sharded_index",
    "save_walk_index",
    "load_walk_index",
]
