"""Serve-side engine facade (ROADMAP item 1's seam).

:class:`~repro.core.engine.PITEngine` is the *build-side* facade: it owns
a summarizer, a walk index, and the fault-tolerant offline build
machinery. A serving daemon needs none of that - it answers queries
against artifacts the offline stage already produced. This module is the
other half of the split: :class:`ServingEngine` wraps a graph, a topic
index, *prebuilt* summaries, and a (prebuilt or lazily materializing)
propagation index around one :class:`~repro.core.search.PersonalizedSearcher`,
and exposes exactly the online surface - ``search`` / ``search_batch`` /
``cache_stats`` / ``metrics_snapshot`` - with bit-identical results to a
``PITEngine`` holding the same data, because both drive the same searcher
over the same arrays.

Construction from disk goes through :meth:`ServingEngine.from_artifacts`,
so every input passes the artifact layer's checksum + graph-signature
validation (:mod:`repro._artifacts`); a corrupt or mismatched file raises
the :class:`~repro.exceptions.ArtifactCorruptedError` /
:class:`~repro.exceptions.ConfigurationError` taxonomy instead of
serving wrong answers. Topics whose summary is *not* in the artifact
surface as a per-request :class:`~repro.exceptions.ConfigurationError` -
a serving engine never falls back to building summaries online.

:func:`publish_engine_gauges` is the shared snapshot-time gauge publisher
used by both facades, so ``/metrics`` scraped from the daemon and
``--metrics-out`` written by the CLI agree on names and meaning.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple, Union

from ..exceptions import ConfigurationError
from ..graph import SocialGraph
from ..obs.registry import MetricsRegistry, MetricsSnapshot, get_registry
from ..topics import KeywordQuery, TopicIndex
from .propagation import PropagationIndex
from .search import PersonalizedSearcher
from .summarization import TopicSummary

__all__ = ["ServingEngine", "publish_engine_gauges"]


def publish_engine_gauges(
    registry: MetricsRegistry,
    *,
    searcher: PersonalizedSearcher,
    propagation_index: PropagationIndex,
    n_summaries: int,
    memory_bytes: int,
) -> None:
    """Publish the snapshot-time engine gauges shared by both facades.

    Cache hit ratios / occupancy, propagation-index size (resident and
    mapped, plus the shard backend's gauges when one is attached), the
    summary count, and the total engine footprint. Called at snapshot
    time only - never on the per-search hot path.
    """
    searcher.publish_cache_gauges(registry)
    registry.set_gauge(
        "propagation.entries_cached", propagation_index.n_cached
    )
    registry.set_gauge(
        "propagation.index_bytes", propagation_index.memory_bytes()
    )
    registry.set_gauge(
        "propagation.index_mapped_bytes", propagation_index.mapped_bytes()
    )
    shards = propagation_index.shards
    if shards is not None:
        shards.publish_gauges(registry)
    registry.set_gauge("summaries.cached", n_summaries)
    registry.set_gauge("engine.memory_bytes", memory_bytes)


class ServingEngine:
    """Online-only PIT-Search over prebuilt artifacts.

    Parameters
    ----------
    graph / topic_index:
        The social network and its topic space (must agree on node count).
    summaries:
        Prebuilt ``topic_id -> TopicSummary`` mapping - typically loaded
        from a ``build-summaries`` artifact. Queries touching a topic
        absent from the mapping fail that request with
        :class:`~repro.exceptions.ConfigurationError`.
    propagation_index:
        A prebuilt (NPZ or sharded) index, or ``None`` to materialize
        entries lazily at ``theta``.
    theta:
        Path-probability threshold for a lazily materializing index
        (ignored when *propagation_index* is given; the artifact's theta
        governs).
    entry_cache_bytes / summary_cache_bytes:
        Bounded serving-cache budgets, exactly as on ``PITEngine``.
    metrics:
        Registry receiving per-search metrics; ``None`` uses the
        process-wide default.
    """

    def __init__(
        self,
        graph: SocialGraph,
        topic_index: TopicIndex,
        summaries: Dict[int, TopicSummary],
        propagation_index: Optional[PropagationIndex] = None,
        *,
        theta: float = 0.002,
        max_expand_rounds: int = 8,
        entry_cache_bytes: Optional[int] = None,
        summary_cache_bytes: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if graph.n_nodes != topic_index.n_nodes:
            raise ConfigurationError(
                f"graph has {graph.n_nodes} nodes but topic index covers "
                f"{topic_index.n_nodes}"
            )
        self._graph = graph
        self._topic_index = topic_index
        self._summaries = dict(summaries)
        self._metrics = metrics
        if propagation_index is None:
            propagation_index = PropagationIndex(graph, theta, metrics=metrics)
        elif (
            propagation_index.graph.n_nodes != graph.n_nodes
            or propagation_index.graph.n_edges != graph.n_edges
        ):
            raise ConfigurationError(
                f"propagation index covers a graph with "
                f"{propagation_index.graph.n_nodes} nodes/"
                f"{propagation_index.graph.n_edges} edges, but the serving "
                f"graph has {graph.n_nodes} nodes/{graph.n_edges} edges"
            )
        self.propagation_index = propagation_index
        if metrics is not None:
            propagation_index.set_metrics(metrics)
        self._searcher = PersonalizedSearcher(
            topic_index,
            self._summaries,
            propagation_index,
            max_expand_rounds=max_expand_rounds,
            entry_cache_bytes=entry_cache_bytes,
            summary_cache_bytes=summary_cache_bytes,
            metrics=metrics,
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_artifacts(
        cls,
        graph: SocialGraph,
        topic_index: TopicIndex,
        summaries_path,
        *,
        index_path=None,
        index_dir=None,
        shard_cache_bytes: Optional[int] = None,
        verify_shards: bool = False,
        theta: float = 0.002,
        max_expand_rounds: int = 8,
        entry_cache_bytes: Optional[int] = None,
        summary_cache_bytes: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> "ServingEngine":
        """Open a serving engine over on-disk artifacts.

        Loads the summaries artifact and, when given, the propagation
        index (``index_path`` for the single-NPZ format, ``index_dir``
        for the sharded mmap format - mutually exclusive). Every load
        verifies checksums and the graph signature; a corrupt or
        mismatched artifact raises and nothing is partially adopted,
        which is what makes this the daemon's hot-reload primitive.
        """
        from .persistence import load_propagation_index, load_summaries

        if index_path is not None and index_dir is not None:
            raise ConfigurationError(
                "index_path and index_dir are mutually exclusive"
            )
        summaries = load_summaries(summaries_path, graph)
        index: Optional[PropagationIndex] = None
        if index_path is not None:
            index = load_propagation_index(index_path, graph)
        elif index_dir is not None:
            from .shards import DEFAULT_SHARD_CACHE_BYTES, load_sharded_index

            index = load_sharded_index(
                index_dir, graph,
                cache_bytes=(
                    DEFAULT_SHARD_CACHE_BYTES if shard_cache_bytes is None
                    else shard_cache_bytes
                ),
                verify=verify_shards,
                metrics=metrics,
            )
        return cls(
            graph, topic_index, summaries, index,
            theta=theta,
            max_expand_rounds=max_expand_rounds,
            entry_cache_bytes=entry_cache_bytes,
            summary_cache_bytes=summary_cache_bytes,
            metrics=metrics,
        )

    # ------------------------------------------------------------------
    @property
    def graph(self) -> SocialGraph:
        """The social graph being served."""
        return self._graph

    @property
    def topic_index(self) -> TopicIndex:
        """The topic space being served."""
        return self._topic_index

    @property
    def n_summaries(self) -> int:
        """Number of prebuilt topic summaries loaded."""
        return len(self._summaries)

    @property
    def theta(self) -> float:
        """The propagation index's path-probability threshold."""
        return self.propagation_index.theta

    # ------------------------------------------------------------------
    def search(
        self,
        user: int,
        query: Union[str, KeywordQuery],
        k: int = 10,
        *,
        with_stats: bool = False,
    ):
        """Top-k personalized influential topics (Algorithm 10)."""
        results, stats = self._searcher.search(user, query, k)
        if with_stats:
            return results, stats
        return results

    def search_batch(
        self,
        requests: Iterable[Tuple[int, Union[str, KeywordQuery]]],
        k: int = 10,
        *,
        with_stats: bool = False,
    ):
        """Answer many ``(user, query)`` requests in one batched call."""
        outcomes = self._searcher.search_many(requests, k)
        if with_stats:
            return outcomes
        return [results for results, _ in outcomes]

    def cache_stats(self):
        """Snapshots of the searcher's bounded serving caches."""
        return self._searcher.cache_stats()

    def set_metrics(self, registry: Optional[MetricsRegistry]) -> "ServingEngine":
        """Route every component's metrics to *registry*."""
        self._metrics = registry
        self.propagation_index.set_metrics(registry)
        self._searcher.set_metrics(registry)
        return self

    def metrics_snapshot(self) -> MetricsSnapshot:
        """A coherent snapshot of the engine's metrics registry."""
        registry = (
            self._metrics if self._metrics is not None else get_registry()
        )
        publish_engine_gauges(
            registry,
            searcher=self._searcher,
            propagation_index=self.propagation_index,
            n_summaries=self.n_summaries,
            memory_bytes=self.memory_bytes(),
        )
        return registry.snapshot()

    def memory_bytes(self) -> int:
        """Approximate resident size of the serving stack.

        The propagation index (resident portion only, when mapped), the
        loaded summaries (including frozen array forms), and the
        searcher's bounded caches and compiled plans - with the summary
        -array LRU's aliased bytes backed out, as on ``PITEngine``.
        """
        total = self.propagation_index.memory_bytes()
        total += sum(s.memory_bytes() for s in self._summaries.values())
        total += self._searcher.cache_memory_bytes()
        summary_stats = self._searcher.summary_cache_stats()
        if summary_stats is not None:
            total -= summary_stats.current_bytes
        return total
