"""Serve-side engine facade (ROADMAP item 1's seam).

:class:`~repro.core.engine.PITEngine` is the *build-side* facade: it owns
a summarizer, a walk index, and the fault-tolerant offline build
machinery. A serving daemon needs none of that - it answers queries
against artifacts the offline stage already produced. This module is the
other half of the split: :class:`ServingEngine` wraps a graph, a topic
index, *prebuilt* summaries, and a (prebuilt or lazily materializing)
propagation index around one :class:`~repro.core.search.PersonalizedSearcher`,
and exposes exactly the online surface - ``search`` / ``search_batch`` /
``cache_stats`` / ``metrics_snapshot`` - with bit-identical results to a
``PITEngine`` holding the same data, because both drive the same searcher
over the same arrays.

Construction from disk goes through :meth:`ServingEngine.from_artifacts`,
so every input passes the artifact layer's checksum + graph-signature
validation (:mod:`repro._artifacts`); a corrupt or mismatched file raises
the :class:`~repro.exceptions.ArtifactCorruptedError` /
:class:`~repro.exceptions.ConfigurationError` taxonomy instead of
serving wrong answers. Topics whose summary is *not* in the artifact
surface as a per-request :class:`~repro.exceptions.ConfigurationError` -
a serving engine never falls back to building summaries online.

:func:`publish_engine_gauges` is the shared snapshot-time gauge publisher
used by both facades, so ``/metrics`` scraped from the daemon and
``--metrics-out`` written by the CLI agree on names and meaning.

**Tiered lookup.** With ``answer_cache_bytes`` set, the engine fronts the
searcher with a third tier: full ``(user, query, k)`` answers. A lookup
then falls through **answers → compiled plans → entries/summaries**, each
tier a :class:`~repro.core.serving.ByteLRUCache` with its own byte
budget. An answer evicted by its budget is *demoted*, not discarded: the
``on_evict`` hook bumps the query's compiled plan to most-recent in the
plan tier, so the recompute costs one kernel pass instead of a full
compile. Warm state for both upper tiers comes from a
:mod:`repro.core.precompute` artifact (:meth:`ServingEngine.warm_from_precompute`).
Invalidation is structural: caches live on the engine instance, every
reload swap builds a fresh engine (empty tiers, re-warmed from the
artifact), and the artifact itself is refused unless its graph signature,
theta, and summaries fingerprint match - so a stale answer cannot survive
a generation bump. :meth:`ServingEngine.invalidate_answers` is the
targeted seam for :mod:`repro.core.dynamics` deltas.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..exceptions import ConfigurationError
from ..graph import SocialGraph
from ..obs.registry import MetricsRegistry, MetricsSnapshot, get_registry
from ..topics import KeywordQuery, TopicIndex
from .diagnostics import CacheStats
from .propagation import PropagationIndex
from .search import (
    PersonalizedSearcher,
    SearchResult,
    SearchStats,
    normalized_query_key,
)
from .serving import ByteLRUCache
from .summarization import TopicSummary

__all__ = ["ServingEngine", "publish_engine_gauges"]

#: Answer-key type: (user, normalized query key, k).
AnswerKey = Tuple[int, Tuple[Tuple[str, ...], str], int]

#: Fixed per-answer overhead charged to the answer tier (key + tuples).
_ANSWER_BASE_BYTES = 160
#: Per-result overhead (SearchResult object + ints/floats), sans label.
_ANSWER_RESULT_BYTES = 96


def _answer_nbytes(results: Tuple[SearchResult, ...]) -> int:
    return _ANSWER_BASE_BYTES + sum(
        _ANSWER_RESULT_BYTES + len(r.label) for r in results
    )


def _stats_from_work(work: Tuple[int, int, int, int, int]) -> SearchStats:
    """Rebuild the deterministic work stats stored with a cached answer.

    The five work counters are a pure function of (user, query, k) over a
    fixed engine state, so replaying them keeps cached responses
    bit-exact with uncached ones; the cache-delta fields describe *this*
    lookup and are zero on an answer hit (no tier below was touched).
    """
    return SearchStats(*work)


def _work_of(stats: SearchStats) -> Tuple[int, int, int, int, int]:
    return (
        stats.topics_considered,
        stats.topics_pruned,
        stats.entries_probed,
        stats.expansion_rounds,
        stats.representatives_touched,
    )


def publish_engine_gauges(
    registry: MetricsRegistry,
    *,
    searcher: PersonalizedSearcher,
    propagation_index: PropagationIndex,
    n_summaries: int,
    memory_bytes: int,
) -> None:
    """Publish the snapshot-time engine gauges shared by both facades.

    Cache hit ratios / occupancy, propagation-index size (resident and
    mapped, plus the shard backend's gauges when one is attached), the
    summary count, and the total engine footprint. Called at snapshot
    time only - never on the per-search hot path.
    """
    searcher.publish_cache_gauges(registry)
    registry.set_gauge(
        "propagation.entries_cached", propagation_index.n_cached
    )
    registry.set_gauge(
        "propagation.index_bytes", propagation_index.memory_bytes()
    )
    registry.set_gauge(
        "propagation.index_mapped_bytes", propagation_index.mapped_bytes()
    )
    shards = propagation_index.shards
    if shards is not None:
        shards.publish_gauges(registry)
    registry.set_gauge("summaries.cached", n_summaries)
    registry.set_gauge("engine.memory_bytes", memory_bytes)


class ServingEngine:
    """Online-only PIT-Search over prebuilt artifacts.

    Parameters
    ----------
    graph / topic_index:
        The social network and its topic space (must agree on node count).
    summaries:
        Prebuilt ``topic_id -> TopicSummary`` mapping - typically loaded
        from a ``build-summaries`` artifact. Queries touching a topic
        absent from the mapping fail that request with
        :class:`~repro.exceptions.ConfigurationError`.
    propagation_index:
        A prebuilt (NPZ or sharded) index, or ``None`` to materialize
        entries lazily at ``theta``.
    theta:
        Path-probability threshold for a lazily materializing index
        (ignored when *propagation_index* is given; the artifact's theta
        governs).
    entry_cache_bytes / summary_cache_bytes:
        Bounded serving-cache budgets, exactly as on ``PITEngine``.
    answer_cache_bytes:
        When set, full top-k answers are cached per ``(user, normalized
        query, k)`` in a bounded LRU of this many bytes - the top tier of
        the answers → plans → entries/summaries fallthrough. ``None``
        (default) disables the tier; results are then always computed by
        the searcher.
    plan_cache_bytes:
        Byte budget of the searcher's compiled-plan tier (forwarded;
        see :class:`~repro.core.search.PersonalizedSearcher`).
    metrics:
        Registry receiving per-search metrics; ``None`` uses the
        process-wide default.
    """

    def __init__(
        self,
        graph: SocialGraph,
        topic_index: TopicIndex,
        summaries: Dict[int, TopicSummary],
        propagation_index: Optional[PropagationIndex] = None,
        *,
        theta: float = 0.002,
        max_expand_rounds: int = 8,
        entry_cache_bytes: Optional[int] = None,
        summary_cache_bytes: Optional[int] = None,
        answer_cache_bytes: Optional[int] = None,
        plan_cache_bytes: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if graph.n_nodes != topic_index.n_nodes:
            raise ConfigurationError(
                f"graph has {graph.n_nodes} nodes but topic index covers "
                f"{topic_index.n_nodes}"
            )
        self._graph = graph
        self._topic_index = topic_index
        self._summaries = dict(summaries)
        self._metrics = metrics
        if propagation_index is None:
            propagation_index = PropagationIndex(graph, theta, metrics=metrics)
        elif (
            propagation_index.graph.n_nodes != graph.n_nodes
            or propagation_index.graph.n_edges != graph.n_edges
        ):
            raise ConfigurationError(
                f"propagation index covers a graph with "
                f"{propagation_index.graph.n_nodes} nodes/"
                f"{propagation_index.graph.n_edges} edges, but the serving "
                f"graph has {graph.n_nodes} nodes/{graph.n_edges} edges"
            )
        self.propagation_index = propagation_index
        if metrics is not None:
            propagation_index.set_metrics(metrics)
        self._searcher = PersonalizedSearcher(
            topic_index,
            self._summaries,
            propagation_index,
            max_expand_rounds=max_expand_rounds,
            entry_cache_bytes=entry_cache_bytes,
            summary_cache_bytes=summary_cache_bytes,
            plan_cache_bytes=plan_cache_bytes,
            metrics=metrics,
        )
        self._answers: Optional[ByteLRUCache] = (
            None if answer_cache_bytes is None
            else ByteLRUCache(
                answer_cache_bytes, name="answers", on_evict=self._demote_answer
            )
        )
        self._answer_demotions = 0
        self._reload_generation = 0

    # ------------------------------------------------------------------
    @classmethod
    def from_artifacts(
        cls,
        graph: SocialGraph,
        topic_index: TopicIndex,
        summaries_path,
        *,
        index_path=None,
        index_dir=None,
        shard_cache_bytes: Optional[int] = None,
        verify_shards: bool = False,
        theta: float = 0.002,
        max_expand_rounds: int = 8,
        entry_cache_bytes: Optional[int] = None,
        summary_cache_bytes: Optional[int] = None,
        answer_cache_bytes: Optional[int] = None,
        plan_cache_bytes: Optional[int] = None,
        precompute_path=None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> "ServingEngine":
        """Open a serving engine over on-disk artifacts.

        Loads the summaries artifact and, when given, the propagation
        index (``index_path`` for the single-NPZ format, ``index_dir``
        for the sharded mmap format - mutually exclusive). Every load
        verifies checksums and the graph signature; a corrupt or
        mismatched artifact raises and nothing is partially adopted,
        which is what makes this the daemon's hot-reload primitive.

        ``precompute_path`` warm-loads a :mod:`repro.core.precompute`
        artifact into the plan and answer tiers after construction (same
        refuse-on-mismatch contract: a precompute built against a
        different graph/theta/summaries raises and the engine is not
        returned).
        """
        from .persistence import load_propagation_index, load_summaries

        if index_path is not None and index_dir is not None:
            raise ConfigurationError(
                "index_path and index_dir are mutually exclusive"
            )
        summaries = load_summaries(summaries_path, graph)
        index: Optional[PropagationIndex] = None
        if index_path is not None:
            index = load_propagation_index(index_path, graph)
        elif index_dir is not None:
            from .shards import DEFAULT_SHARD_CACHE_BYTES, load_sharded_index

            index = load_sharded_index(
                index_dir, graph,
                cache_bytes=(
                    DEFAULT_SHARD_CACHE_BYTES if shard_cache_bytes is None
                    else shard_cache_bytes
                ),
                verify=verify_shards,
                metrics=metrics,
            )
        engine = cls(
            graph, topic_index, summaries, index,
            theta=theta,
            max_expand_rounds=max_expand_rounds,
            entry_cache_bytes=entry_cache_bytes,
            summary_cache_bytes=summary_cache_bytes,
            answer_cache_bytes=answer_cache_bytes,
            plan_cache_bytes=plan_cache_bytes,
            metrics=metrics,
        )
        if precompute_path is not None:
            engine.warm_from_precompute(precompute_path)
        return engine

    # ------------------------------------------------------------------
    @property
    def graph(self) -> SocialGraph:
        """The social graph being served."""
        return self._graph

    @property
    def topic_index(self) -> TopicIndex:
        """The topic space being served."""
        return self._topic_index

    @property
    def n_summaries(self) -> int:
        """Number of prebuilt topic summaries loaded."""
        return len(self._summaries)

    @property
    def theta(self) -> float:
        """The propagation index's path-probability threshold."""
        return self.propagation_index.theta

    # ------------------------------------------------------------------
    # Answer tier
    # ------------------------------------------------------------------
    def _registry(self) -> MetricsRegistry:
        metrics = self._metrics
        return metrics if metrics is not None else get_registry()

    @staticmethod
    def _answer_key(
        user: int, query: Union[str, KeywordQuery], k: int
    ) -> AnswerKey:
        return (int(user), normalized_query_key(query), int(k))

    def _demote_answer(self, key: AnswerKey, _value) -> None:
        # Tier demotion: the evicted answer's compiled plan is bumped to
        # most-recent (and re-charged at its current size), so the head
        # query stays one kernel pass - not one compile - from answered.
        self._answer_demotions += 1
        self._searcher.touch_plan(key[1])

    def _answer_hit(
        self, cached, started: Optional[float]
    ) -> Tuple[List[SearchResult], SearchStats]:
        results, work = cached
        if started is not None:
            registry = self._registry()
            registry.inc("cache.tier.answers.hits")
            registry.observe(
                "cache.tier.answers.hit_latency_seconds",
                perf_counter() - started,
            )
        return list(results), _stats_from_work(work)

    def _store_answer(
        self, key: AnswerKey, results: List[SearchResult], stats: SearchStats
    ) -> None:
        value = (tuple(results), _work_of(stats))
        self._answers.put(key, value, _answer_nbytes(value[0]))

    def search(
        self,
        user: int,
        query: Union[str, KeywordQuery],
        k: int = 10,
        *,
        with_stats: bool = False,
    ):
        """Top-k personalized influential topics (Algorithm 10).

        With the answer tier enabled, a resident ``(user, query, k)``
        answer is returned without touching the searcher; a miss falls
        through to the plan tier and writes the fresh answer back.
        """
        answers = self._answers
        if answers is None:
            results, stats = self._searcher.search(user, query, k)
        else:
            registry = self._registry()
            started = perf_counter() if registry.enabled else None
            key = self._answer_key(user, query, k)
            cached = answers.get(key)
            if cached is not None:
                results, stats = self._answer_hit(cached, started)
            else:
                if started is not None:
                    registry.inc("cache.tier.answers.misses")
                results, stats = self._searcher.search(user, query, k)
                self._store_answer(key, results, stats)
        if with_stats:
            return results, stats
        return results

    def search_batch(
        self,
        requests: Iterable[Tuple[int, Union[str, KeywordQuery]]],
        k: int = 10,
        *,
        with_stats: bool = False,
    ):
        """Answer many ``(user, query)`` requests in one batched call.

        Answer-tier hits are satisfied in place; only the misses reach
        :meth:`PersonalizedSearcher.search_many` (still grouped and
        vectorized), and their answers are written back. Output stays
        aligned with the input order.
        """
        if self._answers is None:
            outcomes = self._searcher.search_many(requests, k)
        else:
            outcomes = self._batch_with_answers(list(requests), k)
        if with_stats:
            return outcomes
        return [results for results, _ in outcomes]

    def _batch_with_answers(
        self, requests: List[Tuple[int, Union[str, KeywordQuery]]], k: int
    ) -> List[Tuple[List[SearchResult], SearchStats]]:
        answers = self._answers
        registry = self._registry()
        enabled = registry.enabled
        outcomes: List[Optional[Tuple[List[SearchResult], SearchStats]]] = (
            [None] * len(requests)
        )
        miss_requests: List[Tuple[int, Union[str, KeywordQuery]]] = []
        miss_slots: List[Tuple[int, AnswerKey]] = []
        n_hits = 0
        for position, (user, query) in enumerate(requests):
            started = perf_counter() if enabled else None
            key = self._answer_key(user, query, k)
            cached = answers.get(key)
            if cached is not None:
                outcomes[position] = self._answer_hit(cached, started)
                n_hits += 1
            else:
                miss_requests.append((user, query))
                miss_slots.append((position, key))
        if enabled and len(miss_slots):
            registry.inc("cache.tier.answers.misses", len(miss_slots))
        if miss_requests:
            computed = self._searcher.search_many(miss_requests, k)
            for (position, key), outcome in zip(miss_slots, computed):
                outcomes[position] = outcome
                self._store_answer(key, outcome[0], outcome[1])
        return outcomes  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Invalidation and warm load
    # ------------------------------------------------------------------
    def invalidate_answers(self, users: Optional[Iterable[int]] = None) -> int:
        """Drop cached answers; the invalidation seam for graph dynamics.

        ``users=None`` clears the whole answer tier (a topic/summary
        change can move any answer). With an iterable of user ids, only
        those users' answers are dropped - the right granularity for a
        :mod:`repro.core.dynamics` delta whose Γ-changed node set is
        known. Returns the number of answers removed. Plans survive
        (they are user-independent); callers whose delta changes
        summaries must also call the searcher's
        ``invalidate_query_caches``.
        """
        answers = self._answers
        if answers is None:
            return 0
        if users is None:
            removed = len(answers)
            answers.clear()
            return removed
        wanted = {int(u) for u in users}
        removed = 0
        for key in answers.keys():
            if key[0] in wanted and answers.pop(key) is not None:
                removed += 1
        return removed

    def apply_delta(self, delta) -> Dict[str, int]:
        """Stream a :class:`~repro.core.dynamics.GraphDelta` into the
        live engine with surgical cache invalidation.

        The incremental-dynamics fast path: the delta is applied to the
        serving graph, the propagation index is refreshed only for the
        theta-affected node set (dirty-shard rewrite under the mmap
        backend, targeted entry rebuild in memory), and the cache tiers
        are trimmed - not cleared. Only theta-affected nodes leave the
        entry tier and the plan probe caches - entries outside the theta
        horizon are bit-identical - while the answer tier evicts the
        plain-reachable users, the set theta-paths can compose into
        across probe chains; every other resident answer keeps serving
        and is still bit-exact (see :mod:`repro.core.dynamics` for the
        soundness argument). Summaries are intentionally left as built -
        the graceful-staleness contract - so post-delta answers match a
        from-scratch engine over (new graph, same summaries artifact).

        Unlike a hot reload this swaps no engine and bumps no
        generation; tiers stay warm for the unaffected majority. Returns
        the application report (edit counts, affected size, refresh
        stats, answers invalidated).
        """
        from .dynamics import affected_nodes, apply_delta_to_graph

        registry = self._registry()
        with registry.timer("dynamics.apply_delta_seconds"):
            with registry.timer("dynamics.affected_seconds"):
                new_graph, application = apply_delta_to_graph(
                    self._graph, delta
                )
                affected = affected_nodes(
                    self._graph,
                    new_graph,
                    application,
                    theta=self.propagation_index.theta,
                )
                reachable = affected_nodes(
                    self._graph, new_graph, application
                )
            index = self.propagation_index
            with registry.timer("dynamics.refresh_seconds"):
                if index.shards is not None:
                    from .shards import refresh_sharded_index

                    new_index = refresh_sharded_index(
                        index.shards, new_graph, affected,
                        metrics=self._metrics,
                    )
                else:
                    new_index = index.rebuilt_for(new_graph, affected)
            self._graph = new_graph
            self.propagation_index = new_index
            if self._metrics is not None:
                new_index.set_metrics(self._metrics)
            self._searcher.set_propagation_index(new_index, affected=affected)
            invalidated = self.invalidate_answers(users=reachable.tolist())
            registry.inc("dynamics.deltas_applied")
            registry.inc("dynamics.edges_inserted", application.n_inserted)
            registry.inc("dynamics.edges_deleted", application.n_deleted)
            registry.inc("dynamics.edges_reweighted", application.n_reweighted)
            registry.inc("dynamics.edges_aged_out", application.n_aged)
            registry.inc("dynamics.nodes_affected", int(affected.size))
            registry.inc("dynamics.nodes_reachable", int(reachable.size))
            registry.inc("dynamics.answers_invalidated", invalidated)
        report = {
            "inserted": application.n_inserted,
            "deleted": application.n_deleted,
            "reweighted": application.n_reweighted,
            "aged_out": application.n_aged,
            "affected": int(affected.size),
            "reachable": int(reachable.size),
            "answers_invalidated": invalidated,
        }
        report.update(new_index.last_refresh_stats or {})
        return report

    def set_reload_generation(self, generation: int) -> "ServingEngine":
        """Record the daemon reload generation this engine serves.

        Invalidation across generations is structural - every hot swap
        builds a *new* engine whose tiers start empty (modulo artifact
        warm-load), so nothing cached under an older generation can ever
        be served. The recorded generation is exposed as the
        ``cache.tier.generation`` gauge so dashboards can correlate
        hit-ratio resets with swaps.
        """
        self._reload_generation = int(generation)
        return self

    @property
    def reload_generation(self) -> int:
        """The generation stamped by the reload manager (0 = initial)."""
        return self._reload_generation

    def warm_from_precompute(self, source) -> Dict[str, int]:
        """Warm the plan and answer tiers from a precompute artifact.

        *source* is a path or an already-loaded
        :class:`~repro.core.precompute.PrecomputeArtifact`. The artifact
        must match this engine's graph signature, theta, and summaries
        fingerprint (:class:`~repro.exceptions.ConfigurationError`
        otherwise - serving a precomputed answer over different data
        would be silently wrong). Returns
        ``{"plans": adopted, "answers": seeded}``; answers are skipped
        when the answer tier is disabled, and neither kind displaces
        state already resident (live traffic beats warm-up).
        """
        from .precompute import (
            PrecomputeArtifact,
            answer_entry,
            load_precompute,
            plan_from_record,
            validate_precompute,
        )

        pack = (
            source if isinstance(source, PrecomputeArtifact)
            else load_precompute(source)
        )
        validate_precompute(pack, self._graph, self.theta, self._summaries)
        adopted = 0
        for record in pack.plans:
            if self._searcher.adopt_plan(plan_from_record(record)):
                adopted += 1
        seeded = 0
        answers = self._answers
        if answers is not None:
            for record in pack.answers:
                key, value = answer_entry(record)
                if key in answers:
                    continue
                answers.put(key, value, _answer_nbytes(value[0]))
                seeded += 1
        return {"plans": adopted, "answers": seeded}

    # ------------------------------------------------------------------
    def answer_cache_stats(self) -> Optional[CacheStats]:
        """Snapshot of the answer tier (None when disabled)."""
        if self._answers is None:
            return None
        return self._answers.stats()

    def cache_stats(self):
        """Snapshots of the searcher's bounded serving caches."""
        return self._searcher.cache_stats()

    def tier_stats(self) -> Dict[str, CacheStats]:
        """Per-tier snapshots of the answers → plans → entries/summaries
        fallthrough (only the tiers that are configured)."""
        tiers: Dict[str, CacheStats] = {}
        pairs = (
            ("answers", self.answer_cache_stats()),
            ("plans", self._searcher.plan_cache_stats()),
            ("entries", self._searcher.entry_cache_stats()),
            ("summaries", self._searcher.summary_cache_stats()),
        )
        for name, stats in pairs:
            if stats is not None:
                tiers[name] = stats
        return tiers

    def publish_tier_gauges(
        self, registry: Optional[MetricsRegistry] = None
    ) -> None:
        """Publish the ``cache.tier.*`` gauge family (snapshot time only)."""
        if registry is None:
            registry = self._registry()
        for name, stats in self.tier_stats().items():
            prefix = f"cache.tier.{name}"
            registry.set_gauge(f"{prefix}.bytes", stats.current_bytes)
            registry.set_gauge(f"{prefix}.items", stats.n_items)
            registry.set_gauge(f"{prefix}.hit_ratio", stats.hit_rate)
            registry.set_gauge(f"{prefix}.evictions", stats.evictions)
        registry.set_gauge(
            "cache.tier.answers.demotions", self._answer_demotions
        )
        registry.set_gauge("cache.tier.generation", self._reload_generation)

    def set_metrics(self, registry: Optional[MetricsRegistry]) -> "ServingEngine":
        """Route every component's metrics to *registry*."""
        self._metrics = registry
        self.propagation_index.set_metrics(registry)
        self._searcher.set_metrics(registry)
        return self

    def metrics_snapshot(self) -> MetricsSnapshot:
        """A coherent snapshot of the engine's metrics registry."""
        registry = self._registry()
        publish_engine_gauges(
            registry,
            searcher=self._searcher,
            propagation_index=self.propagation_index,
            n_summaries=self.n_summaries,
            memory_bytes=self.memory_bytes(),
        )
        self.publish_tier_gauges(registry)
        return registry.snapshot()

    def memory_bytes(self) -> int:
        """Approximate resident size of the serving stack.

        The propagation index (resident portion only, when mapped), the
        loaded summaries (including frozen array forms), and the
        searcher's bounded caches and compiled plans - with the summary
        -array LRU's aliased bytes backed out, as on ``PITEngine``.
        """
        total = self.propagation_index.memory_bytes()
        total += sum(s.memory_bytes() for s in self._summaries.values())
        total += self._searcher.cache_memory_bytes()
        if self._answers is not None:
            total += self._answers.memory_bytes()
        summary_stats = self._searcher.summary_cache_stats()
        if summary_stats is not None:
            total -= summary_stats.current_bytes
        return total
