"""Top-k personalized influential topic search - Algorithms 10 & 11 (S22).

Online stage. Given a query user ``v`` and keyword query ``q``:

1. fetch the q-related topics and their summaries (representative node
   sets with local weights);
2. for each topic, aggregate the influence of the representatives that
   appear in ``Γ(v)`` (the propagation entry of ``v``) - no graph
   traversal;
3. prune topics whose influence upper bound (current score + remaining
   representative weight × ``maxEP``) cannot reach the current top-k;
4. while un-pruned topics remain outside the current top-k, *expand*
   through the marked frontier: probe ``Γ(u)`` of marked nodes ``u``,
   discounting by ``Γ(v)[u]`` (DESIGN.md note: Algorithm 11's pseudocode
   omits this factor; including it is required for the bound in step 3 to
   be meaningful, and is the reading consistent with §5.1's path
   semantics).

The returned ranking is deterministic: ties break on topic label.

Execution is array-native. A query compiles once into a :class:`_QueryPlan`
holding every related summary's representatives concatenated into one
sorted-per-topic ``int64`` array (plus aligned weights and a topic-of-rep
map), so resolving the whole candidate set against a propagation entry is
a single ``np.searchsorted`` pass followed by ``np.bincount`` scatter-sums
- replacing the per-representative hash probes of the original
formulation (retained verbatim in :mod:`repro.core._scalar_search` as the
parity/benchmark baseline). Consumed representatives are tracked in a
boolean mask instead of popping dict keys, the k-th-best bound is an
incrementally maintained bounded heap (:class:`_KthBound`, O(log k) per
prune instead of a fresh ``heapq.nlargest``), and the upper-bound prune
itself runs vectorized over the active-topic arrays.

:meth:`PersonalizedSearcher.search_many` is the batched serving layer:
requests are grouped by keyword query so topic resolution, label ranking
and summary arrays compile once per distinct query, and propagation
entries / summary arrays can sit in bounded byte-accounted LRU caches
(see :mod:`repro.core.serving`).
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from dataclasses import dataclass
from time import perf_counter
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from .._utils import require_in_range
from ..exceptions import ConfigurationError
from ..obs.registry import MetricsRegistry, get_registry
from ..topics import KeywordQuery, TopicIndex
from .diagnostics import CacheStats
from .propagation import PropagationEntry, PropagationIndex
from .serving import ByteLRUCache
from .summarization import TopicSummary

__all__ = [
    "SearchResult",
    "SearchStats",
    "PersonalizedSearcher",
    "normalized_query_key",
]

SummaryProvider = Union[Mapping[int, TopicSummary], Callable[[int], TopicSummary]]

_EMPTY_F8 = np.empty(0, dtype=np.float64)
_EMPTY_I8 = np.empty(0, dtype=np.int64)

#: Default byte budget for the compiled-plan cache tier.
DEFAULT_PLAN_CACHE_BYTES = 128 << 20


def normalized_query_key(
    query: Union[str, "KeywordQuery"],
) -> Tuple[Tuple[str, ...], str]:
    """The canonical cache key of a keyword query: equivalent queries share it.

    Topic matching is set-based (:meth:`KeywordQuery.matches` compares
    token *sets*), so keyword order, duplicates, and letter case do not
    change which topics are q-related - but they used to produce distinct
    plan-cache keys, compiling (and retaining) duplicate
    :class:`_QueryPlan` objects for ``"phone music"`` vs ``"music
    phone"``. The normalized key - case-folded, de-duplicated, sorted
    keywords plus the match mode - collapses those spellings onto one
    compiled plan, one answer-cache slot, and one coalescing group.
    """
    if isinstance(query, str):
        query = KeywordQuery.parse(query)
    return (
        tuple(sorted({keyword.casefold() for keyword in query.keywords})),
        query.mode,
    )


@dataclass(frozen=True)
class SearchResult:
    """One ranked topic.

    Attributes
    ----------
    topic_id / label:
        The topic.
    influence:
        Aggregated (approximate) influence of the topic on the query user.
    """

    topic_id: int
    label: str
    influence: float


@dataclass
class SearchStats:
    """Work accounting for one search (used by the efficiency benches).

    Attributes
    ----------
    topics_considered:
        Number of q-related topics.
    topics_pruned:
        Topics eliminated by the upper-bound test before full evaluation.
    entries_probed:
        Propagation entries consulted (1 for the user + 1 per expanded
        frontier node).
    expansion_rounds:
        Number of Expand recursions executed.
    representatives_touched:
        Representative-weight slots examined (one per representative per
        summary-set probe; identical accounting to the scalar reference).
    entry_cache_hits / entry_cache_misses:
        Bounded propagation-entry cache outcomes during this search
        (0 when the searcher runs without an entry cache).
    summary_cache_hits / summary_cache_misses:
        Bounded summary-array cache outcomes during this search
        (0 when the searcher runs without a summary cache).
    """

    topics_considered: int = 0
    topics_pruned: int = 0
    entries_probed: int = 0
    expansion_rounds: int = 0
    representatives_touched: int = 0
    entry_cache_hits: int = 0
    entry_cache_misses: int = 0
    summary_cache_hits: int = 0
    summary_cache_misses: int = 0


def _gamma_intersect(
    sources: np.ndarray, probabilities: np.ndarray, reps: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Γ∩summary kernel: resolve *reps* against a sorted source array.

    One ``np.searchsorted`` pass over the entry's already-sorted ``int64``
    source array. Returns ``(found, probs)`` where ``found`` is a boolean
    mask over *reps* and ``probs`` holds the aggregated path probabilities
    of the found representatives, aligned with ``reps[found]``.
    """
    if sources.size == 0 or reps.size == 0:
        return np.zeros(reps.size, dtype=bool), _EMPTY_F8
    pos = np.searchsorted(sources, reps)
    np.minimum(pos, sources.size - 1, out=pos)
    found = sources[pos] == reps
    return found, probabilities[pos[found]]


class _KthBound:
    """Incrementally maintained k-th-best score over rising per-topic scores.

    A lazy-deletion min-heap of the current k best scores: because scores
    only ever increase (Expand adds non-negative mass), membership changes
    one topic at a time and each update or bound read is O(log k)
    amortized - replacing the scalar path's fresh ``heapq.nlargest`` per
    prune. The bound equals ``min`` of the k largest current scores, i.e.
    exactly the scalar ``_kth_best`` (or -inf while fewer than k topics
    exist).
    """

    __slots__ = ("_k", "_heap", "_member")

    def __init__(self, k: int, scores: np.ndarray):
        self._k = k
        self._member: Dict[int, float] = {}
        if scores.size:
            top = np.argsort(-scores, kind="stable")[:k]
            self._member = {
                int(t): float(scores[t]) for t in top.tolist()
            }
        self._heap: List[Tuple[float, int]] = [
            (score, topic) for topic, score in self._member.items()
        ]
        heapq.heapify(self._heap)

    def _settle_root(self) -> None:
        heap, member = self._heap, self._member
        while heap and member.get(heap[0][1]) != heap[0][0]:
            heapq.heappop(heap)

    def bound(self) -> float:
        """The k-th best current score, or -inf with fewer than k topics."""
        if len(self._member) < self._k:
            return float("-inf")
        self._settle_root()
        return self._heap[0][0]

    def update(self, topic: int, score: float) -> None:
        """Record that *topic*'s score rose to *score*."""
        member = self._member
        current = member.get(topic)
        if current is not None:
            if score > current:
                member[topic] = score
                heapq.heappush(self._heap, (score, topic))
            return
        if len(member) < self._k:
            member[topic] = score
            heapq.heappush(self._heap, (score, topic))
            return
        self._settle_root()
        if score > self._heap[0][0]:
            _, evicted = heapq.heappop(self._heap)
            del member[evicted]
            member[topic] = score
            heapq.heappush(self._heap, (score, topic))


class _QueryPlan:
    """Array-compiled form of one keyword query's candidate topic set.

    Holds everything about the query that is user-independent: the related
    topic ids, their labels and tie-break ranks, and all summaries'
    representatives flattened into one array block (per-topic sorted ids,
    aligned weights, and a rep → topic-position map for bincount
    scatter-sums). Built once per distinct query and shared by every
    request in a batch - and across calls via the searcher's plan cache.
    """

    __slots__ = (
        "key", "topic_ids", "labels", "label_rank",
        "rep_ids", "rep_weights", "rep_topic", "rep_counts",
        "n_topics", "n_reps", "probe_cache",
    )

    #: Per-plan cap on cached Γ∩summary probe results (nodes).
    PROBE_CACHE_CAP = 4096

    def __init__(
        self,
        key: Tuple,
        topic_ids: Sequence[int],
        labels: Sequence[str],
        rep_arrays: Sequence[Tuple[np.ndarray, np.ndarray]],
    ):
        self.key = key
        self.topic_ids = list(topic_ids)
        self.labels = list(labels)
        n = len(self.topic_ids)
        self.n_topics = n
        order = sorted(range(n), key=lambda i: self.labels[i])
        rank = np.empty(n, dtype=np.int64)
        rank[order] = np.arange(n, dtype=np.int64)
        self.label_rank = rank
        if n:
            self.rep_counts = np.fromiter(
                (reps.size for reps, _ in rep_arrays), dtype=np.int64, count=n
            )
            self.rep_ids = (
                np.concatenate([reps for reps, _ in rep_arrays])
                if rep_arrays else _EMPTY_I8
            )
            self.rep_weights = (
                np.concatenate([weights for _, weights in rep_arrays])
                if rep_arrays else _EMPTY_F8
            )
            self.rep_topic = np.repeat(
                np.arange(n, dtype=np.int64), self.rep_counts
            )
        else:
            self.rep_counts = _EMPTY_I8
            self.rep_ids = _EMPTY_I8
            self.rep_weights = _EMPTY_F8
            self.rep_topic = _EMPTY_I8
        self.n_reps = int(self.rep_ids.size)
        # node -> (found mask, per-rep probabilities, 0 where absent). The
        # Γ∩summary resolution of a node against this plan's rep block is
        # user-independent, so every request in a batch that expands the
        # same node (and every later query with this plan) reuses it.
        self.probe_cache: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}

    def probe(
        self, node: int, entry: PropagationEntry
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Resolve *entry* against the whole rep block, cached per node."""
        cached = self.probe_cache.get(node)
        if cached is None:
            found, probs = _gamma_intersect(
                entry.sources, entry.probabilities, self.rep_ids
            )
            probs_full = np.zeros(self.n_reps, dtype=np.float64)
            probs_full[found] = probs
            cached = (found, probs_full)
            if len(self.probe_cache) < self.PROBE_CACHE_CAP:
                self.probe_cache[node] = cached
        return cached

    def memory_bytes(self) -> int:
        """Approximate resident size of the plan's arrays."""
        per_probe = self.n_reps * 9  # bool mask + float64 probabilities
        return int(
            self.rep_ids.nbytes
            + self.rep_weights.nbytes
            + self.rep_topic.nbytes
            + self.rep_counts.nbytes
            + self.label_rank.nbytes
            + len(self.probe_cache) * per_probe
        )


class PersonalizedSearcher:
    """Executes Algorithm 10 (with Algorithm 11's Expand) over an index stack.

    Parameters
    ----------
    topic_index:
        The topic space (query -> q-related topics, Algorithm 10 line 1).
    summaries:
        Topic summaries: either a mapping ``topic_id -> TopicSummary`` or a
        callable (e.g. a cached summarizer) with that signature.
    propagation_index:
        The §5.1 personalized propagation index.
    max_expand_rounds:
        Recursion cap for Expand; the paper recurses until no frontier
        remains, which the cap also allows (set it high) but bounds.
    entry_cache_bytes:
        When set, lazily built propagation entries live in a bounded LRU
        of this many bytes instead of the index's unbounded cache (entries
        the index already holds - e.g. a prebuilt artifact - are served
        from it directly and charged nothing).
    summary_cache_bytes:
        When set, summary array forms live in a bounded LRU of this many
        bytes, and cache hits skip the summary provider entirely.
    plan_cache_size:
        Number of compiled :class:`_QueryPlan` objects retained across
        calls (keyed by normalized keyword query); 0 disables plan reuse.
    plan_cache_bytes:
        Byte budget of the compiled-plan tier (default
        :data:`DEFAULT_PLAN_CACHE_BYTES`). Plans are charged their array
        block at insert time; LRU plans are evicted past the budget even
        when fewer than ``plan_cache_size`` are resident.
    metrics:
        Registry receiving per-search accounting (latency histogram plus
        the :class:`SearchStats` counters). ``None`` uses the
        process-wide default; pass
        :func:`~repro.obs.registry.null_registry` to disable - the timed
        path is skipped entirely, so search output and per-call stats
        are byte-identical either way.
    """

    def __init__(
        self,
        topic_index: TopicIndex,
        summaries: SummaryProvider,
        propagation_index: PropagationIndex,
        *,
        max_expand_rounds: int = 8,
        entry_cache_bytes: Optional[int] = None,
        summary_cache_bytes: Optional[int] = None,
        plan_cache_size: int = 256,
        plan_cache_bytes: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        require_in_range("max_expand_rounds", max_expand_rounds, 0)
        require_in_range("plan_cache_size", plan_cache_size, 0)
        self._topic_index = topic_index
        self._summaries = summaries
        self._propagation = propagation_index
        self._max_expand_rounds = int(max_expand_rounds)
        self._entry_cache: Optional[ByteLRUCache] = (
            None if entry_cache_bytes is None
            else ByteLRUCache(entry_cache_bytes, name="propagation-entries")
        )
        self._summary_cache: Optional[ByteLRUCache] = (
            None if summary_cache_bytes is None
            else ByteLRUCache(summary_cache_bytes, name="summary-arrays")
        )
        self._plan_cache_size = int(plan_cache_size)
        self._plans: Optional[ByteLRUCache] = (
            None if plan_cache_size == 0
            else ByteLRUCache(
                plan_cache_bytes if plan_cache_bytes is not None
                else DEFAULT_PLAN_CACHE_BYTES,
                name="query-plans",
            )
        )
        self._metrics = metrics

    def set_metrics(self, registry: Optional[MetricsRegistry]) -> None:
        """Route search metrics to *registry* (None = process default)."""
        self._metrics = registry

    def _registry(self) -> MetricsRegistry:
        metrics = self._metrics
        return metrics if metrics is not None else get_registry()

    # ------------------------------------------------------------------
    # Index wiring and cache management
    # ------------------------------------------------------------------
    def set_propagation_index(
        self,
        index: PropagationIndex,
        affected: Optional[np.ndarray] = None,
    ) -> "PersonalizedSearcher":
        """Swap in a different propagation index (public engine/test hook).

        With *affected* omitted, clears the bounded entry cache and every
        compiled plan's probe cache so no stale Γ data survives the swap.
        The delta path passes *affected* - the node ids whose Γ may differ
        between the two indexes - and only those entries are evicted;
        everything else keeps serving warm. Compatibility with the topic
        space is the caller's contract
        (:meth:`PITEngine.use_propagation_index` validates the graph).
        """
        self._propagation = index
        if affected is None:
            if self._entry_cache is not None:
                self._entry_cache.clear()
            if self._plans is not None:
                for plan in self._plans.values():
                    plan.probe_cache.clear()
            return self
        wanted = set(int(n) for n in np.asarray(affected).ravel())
        if self._entry_cache is not None:
            for node in self._entry_cache.keys():
                if node in wanted:
                    self._entry_cache.pop(node)
        if self._plans is not None:
            for plan in self._plans.values():
                for node in wanted.intersection(plan.probe_cache):
                    del plan.probe_cache[node]
        return self

    def set_topic_index(self, topic_index: TopicIndex) -> "PersonalizedSearcher":
        """Swap the topic space, invalidating every query-derived cache."""
        self._topic_index = topic_index
        self.invalidate_query_caches()
        return self

    def invalidate_query_caches(self) -> None:
        """Drop compiled plans and cached summary arrays.

        Call after topic summaries change (e.g. dynamic maintenance);
        propagation entries are unaffected.
        """
        if self._plans is not None:
            self._plans.clear()
        if self._summary_cache is not None:
            self._summary_cache.clear()

    def entry_cache_stats(self) -> Optional[CacheStats]:
        """Snapshot of the bounded entry cache (None when unbounded)."""
        if self._entry_cache is None:
            return None
        return self._entry_cache.stats()

    def summary_cache_stats(self) -> Optional[CacheStats]:
        """Snapshot of the bounded summary cache (None when disabled)."""
        if self._summary_cache is None:
            return None
        return self._summary_cache.stats()

    def plan_cache_stats(self) -> Optional[CacheStats]:
        """Snapshot of the compiled-plan tier (None when disabled).

        Kept out of :meth:`cache_stats` - that tuple enumerates the
        *opt-in* byte-bounded caches and is empty in the default
        configuration, a contract callers rely on.
        """
        if self._plans is None:
            return None
        return self._plans.stats()

    def cache_stats(self) -> Tuple[CacheStats, ...]:
        """Snapshots of every configured bounded cache."""
        return tuple(
            s for s in (self.entry_cache_stats(), self.summary_cache_stats())
            if s is not None
        )

    def cache_memory_bytes(self) -> int:
        """Bytes held by the bounded serving caches and compiled plans.

        Plans are measured live (their probe caches grow after insert),
        not at the insert-time charge the LRU budget works from.
        """
        total = 0
        if self._plans is not None:
            total += sum(plan.memory_bytes() for plan in self._plans.values())
        if self._entry_cache is not None:
            total += self._entry_cache.memory_bytes()
        if self._summary_cache is not None:
            total += self._summary_cache.memory_bytes()
        return int(total)

    # ------------------------------------------------------------------
    # Providers
    # ------------------------------------------------------------------
    def _summary(self, topic_id: int) -> TopicSummary:
        if callable(self._summaries):
            return self._summaries(topic_id)
        try:
            return self._summaries[topic_id]
        except KeyError:
            raise ConfigurationError(
                f"no summary available for topic {topic_id}"
            ) from None

    def _summary_arrays(self, topic_id: int) -> Tuple[np.ndarray, np.ndarray]:
        cache = self._summary_cache
        if cache is not None:
            arrays = cache.get_or_put(
                topic_id,
                lambda: self._summary(topic_id).arrays(),
                lambda a: a.memory_bytes(),
            )
            return arrays.representatives, arrays.weights
        arrays = self._summary(topic_id).arrays()
        return arrays.representatives, arrays.weights

    def _entry(self, node: int) -> PropagationEntry:
        cache = self._entry_cache
        if cache is None:
            return self._propagation.entry(node)
        prebuilt = self._propagation.get_cached(node)
        if prebuilt is not None:
            return prebuilt
        return cache.get_or_put(
            node,
            lambda: self._propagation.build_entry(node),
            lambda e: e.memory_bytes(),
        )

    def _plan(self, query: Union[str, KeywordQuery]) -> _QueryPlan:
        if isinstance(query, str):
            query = KeywordQuery.parse(query)
        key = normalized_query_key(query)
        plans = self._plans
        if plans is not None:
            plan = plans.get(key)
            if plan is not None:
                registry = self._registry()
                if registry.enabled:
                    registry.inc("cache.tier.plans.hits")
                return plan
        topic_ids = self._topic_index.related_topics(query)
        labels = [self._topic_index.label(t) for t in topic_ids]
        rep_arrays = [self._summary_arrays(t) for t in topic_ids]
        plan = _QueryPlan(key, topic_ids, labels, rep_arrays)
        if plans is not None:
            registry = self._registry()
            if registry.enabled:
                registry.inc("cache.tier.plans.misses")
            self._admit_plan(plan)
        return plan

    def _admit_plan(self, plan: _QueryPlan) -> None:
        plans = self._plans
        assert plans is not None
        plans.put(plan.key, plan, plan.memory_bytes())
        while len(plans) > self._plan_cache_size:
            plans.pop(plans.keys()[0])

    def plan_for(self, query: Union[str, KeywordQuery]) -> _QueryPlan:
        """Compile (or fetch from the plan tier) the plan for *query*.

        The offline precompute stage uses this to materialize head-query
        plans for the artifact; it is the same code path - and the same
        cache - every search goes through.
        """
        return self._plan(query)

    def touch_plan(self, key: Tuple) -> bool:
        """Bump a resident plan to most-recent (the tier-demotion hook).

        Called when a cached *answer* built from this plan is evicted:
        keeping the plan warm means the head query costs one kernel pass
        to re-answer, not a recompile. The plan is re-charged at its
        current size (probe caches grow after insert), so the byte budget
        tracks reality. No hit/miss accounting - this is maintenance.
        """
        plans = self._plans
        if plans is None:
            return False
        plan = plans.pop(key)
        if plan is None:
            return False
        plans.put(key, plan, plan.memory_bytes())
        return True

    def adopt_plan(self, plan: _QueryPlan) -> bool:
        """Install a precompiled plan into the plan tier (warm load).

        The plan must carry a :func:`normalized_query_key` in ``plan.key``
        (plans deserialized by :mod:`repro.core.precompute` do). Returns
        ``False`` when the plan tier is disabled or the key is already
        resident - a warm load never displaces a live, probe-warmed plan.
        """
        plans = self._plans
        if plans is None or plan.key in plans:
            return False
        self._admit_plan(plan)
        return True

    def _cache_marks(self) -> Tuple[int, int, int, int]:
        entry, summary = self._entry_cache, self._summary_cache
        return (
            entry.hits if entry else 0,
            entry.misses if entry else 0,
            summary.hits if summary else 0,
            summary.misses if summary else 0,
        )

    def _note_cache_deltas(
        self, stats: SearchStats, marks: Tuple[int, int, int, int]
    ) -> None:
        now = self._cache_marks()
        stats.entry_cache_hits += now[0] - marks[0]
        stats.entry_cache_misses += now[1] - marks[1]
        stats.summary_cache_hits += now[2] - marks[2]
        stats.summary_cache_misses += now[3] - marks[3]

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def _timed_execute(
        self, plan: _QueryPlan, user: int, k: int
    ) -> Tuple[List["SearchResult"], SearchStats]:
        """Run one search, publishing latency + work counters if enabled.

        With a disabled registry the timed branch is skipped outright, so
        the uninstrumented path pays nothing - not even the clock reads.
        The per-search cost of the instrumented path is one timer and a
        handful of counter adds; cache hit-ratio gauges are published only
        at snapshot time (:meth:`publish_cache_gauges`), never per search.
        """
        registry = self._registry()
        if not registry.enabled:
            return self._execute(plan, user, k)
        start = perf_counter()
        results, stats = self._execute(plan, user, k)
        seconds = perf_counter() - start
        registry.observe("search.latency_seconds", seconds)
        registry.inc("search.requests")
        registry.inc("search.topics_considered", stats.topics_considered)
        registry.inc("search.topics_pruned", stats.topics_pruned)
        registry.inc("search.entries_probed", stats.entries_probed)
        registry.inc("search.expansion_rounds", stats.expansion_rounds)
        registry.inc(
            "search.representatives_touched", stats.representatives_touched
        )
        return results, stats

    def publish_cache_gauges(
        self, registry: Optional[MetricsRegistry] = None
    ) -> None:
        """Publish cache hit-ratio / occupancy gauges to *registry*.

        Called at snapshot time (``PITEngine.metrics_snapshot``, the
        ``stats`` CLI) rather than per search, keeping the hot path lean.
        """
        if registry is None:
            registry = self._registry()
        for stats in self.cache_stats():
            prefix = f"cache.{stats.name}"
            registry.set_gauge(f"{prefix}.hit_ratio", stats.hit_rate)
            registry.set_gauge(f"{prefix}.current_bytes", stats.current_bytes)
            registry.set_gauge(f"{prefix}.items", stats.n_items)
            registry.set_gauge(f"{prefix}.evictions", stats.evictions)

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------
    def search(
        self,
        user: int,
        query: Union[str, KeywordQuery],
        k: int,
    ) -> Tuple[List[SearchResult], SearchStats]:
        """Top-k most influential q-related topics for *user*.

        Returns the ranked results (length <= k; shorter when fewer topics
        match the query) and the work statistics.
        """
        require_in_range("k", k, 1)
        marks = self._cache_marks()
        plan = self._plan(query)
        results, stats = self._timed_execute(plan, user, k)
        self._note_cache_deltas(stats, marks)
        return results, stats

    def search_many(
        self,
        requests: Iterable[Tuple[int, Union[str, KeywordQuery]]],
        k: int,
    ) -> List[Tuple[List[SearchResult], SearchStats]]:
        """Answer many ``(user, query)`` requests, batched by query.

        Requests sharing a keyword query (same normalized tokens and
        mode) are grouped so topic resolution, label ranking and summary
        arrays compile exactly once per distinct query; every user in the
        group then runs the array kernels against the shared plan.
        Results are returned aligned with the input order, each the same
        ``(results, stats)`` pair :meth:`search` produces.
        """
        require_in_range("k", k, 1)
        request_list = [
            (int(user), query) for user, query in requests
        ]
        outcomes: List[Optional[Tuple[List[SearchResult], SearchStats]]] = (
            [None] * len(request_list)
        )
        groups: "OrderedDict[Tuple, Tuple[KeywordQuery, List[int]]]" = OrderedDict()
        for position, (_, query) in enumerate(request_list):
            parsed = (
                KeywordQuery.parse(query) if isinstance(query, str) else query
            )
            key = normalized_query_key(parsed)
            bucket = groups.get(key)
            if bucket is None:
                groups[key] = (parsed, [position])
            else:
                bucket[1].append(position)
        for parsed, positions in groups.values():
            group_marks = self._cache_marks()
            plan = self._plan(parsed)
            for i, position in enumerate(positions):
                marks = group_marks if i == 0 else self._cache_marks()
                user = request_list[position][0]
                results, stats = self._timed_execute(plan, user, k)
                self._note_cache_deltas(stats, marks)
                outcomes[position] = (results, stats)
        return outcomes  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Array-native Algorithm 10/11
    # ------------------------------------------------------------------
    def _execute(
        self, plan: _QueryPlan, user: int, k: int
    ) -> Tuple[List[SearchResult], SearchStats]:
        stats = SearchStats()
        stats.topics_considered = plan.n_topics
        if plan.n_topics == 0:
            return [], stats

        entry_v = self._entry(user)
        stats.entries_probed += 1
        n_topics = plan.n_topics

        # Algorithm 10 lines 4-13: resolve every summary against Γ(v) in
        # one searchsorted pass (cached per node), then scatter-sum per
        # topic.
        found, probs_full = plan.probe(user, entry_v)
        stats.representatives_touched += plan.n_reps
        scores = np.bincount(
            plan.rep_topic,
            weights=probs_full * plan.rep_weights,
            minlength=n_topics,
        )
        remaining_weight = np.bincount(
            plan.rep_topic,
            weights=plan.rep_weights * ~found,
            minlength=n_topics,
        )
        consumed = found.copy()  # consumed mask over the rep block
        n_remaining = plan.rep_counts - np.bincount(
            plan.rep_topic[found], minlength=n_topics
        )

        # Lines 14-20: initial pruning against the marked-frontier bound.
        # The frontier is a dense per-node reach array (reach[u] = best
        # discounted weight from v to u); Γ*(v) seeds it at weight 1.
        n_nodes = self._propagation.graph.n_nodes
        reach = np.zeros(n_nodes, dtype=np.float64)
        marked_v = entry_v.marked_array
        if marked_v.size:
            _, marked_probs = entry_v.marked_pairs()
            reach[marked_v] = marked_probs
            max_ep = float(marked_probs.max())
        else:
            max_ep = 0.0
        active = np.ones(n_topics, dtype=bool)
        tracker = _KthBound(k, scores)
        self._prune(
            active, scores, remaining_weight, n_remaining, tracker, max_ep,
            stats,
        )

        # Lines 21-22 + Algorithm 11: expand while an active topic is
        # outside the current top-k (membership, not scores, drives the
        # recursion - identical to the scalar reading).
        expanded = np.zeros(n_nodes, dtype=bool)
        has_frontier = bool(marked_v.size)
        rounds = 0
        while (
            has_frontier
            and rounds < self._max_expand_rounds
            and self._active_outside_topk(active, scores, plan.label_rank, k)
        ):
            rounds += 1
            stats.expansion_rounds += 1
            reach, next_max = self._expand_round(
                plan, reach, expanded, active, scores, remaining_weight,
                n_remaining, consumed, tracker, k, stats,
            )
            # Frontier entries are only created with positive reach, so a
            # zero max means the next frontier is empty.
            has_frontier = next_max > 0.0

        order = np.lexsort((plan.label_rank, -scores))[:k]
        results = [
            SearchResult(
                topic_id=plan.topic_ids[i],
                label=plan.labels[i],
                influence=float(scores[i]),
            )
            for i in order.tolist()
        ]
        return results, stats

    @staticmethod
    def _active_outside_topk(
        active: np.ndarray, scores: np.ndarray, label_rank: np.ndarray, k: int
    ) -> bool:
        """Whether any active topic sits outside the current top-k."""
        if not active.any():
            return False
        order = np.lexsort((label_rank, -scores))
        outside = active.copy()
        outside[order[:k]] = False
        return bool(outside.any())

    @staticmethod
    def _prune(
        active: np.ndarray,
        scores: np.ndarray,
        remaining_weight: np.ndarray,
        n_remaining: np.ndarray,
        tracker: _KthBound,
        max_ep: float,
        stats: SearchStats,
    ) -> bool:
        """Vectorized lines 17-20: drop exhausted and bounded-out topics.

        Returns whether any topic was dropped (i.e. *active* changed).
        """
        kth = tracker.bound()
        exhausted = n_remaining == 0
        upper = scores + remaining_weight * max_ep
        drop = active & (exhausted | (kth >= upper))
        if not drop.any():
            return False
        stats.topics_pruned += int(np.count_nonzero(drop & ~exhausted))
        active &= ~drop
        return True

    def _expand_round(
        self,
        plan: _QueryPlan,
        reach: np.ndarray,
        expanded: np.ndarray,
        active: np.ndarray,
        scores: np.ndarray,
        remaining_weight: np.ndarray,
        n_remaining: np.ndarray,
        consumed: np.ndarray,
        tracker: _KthBound,
        k: int,
        stats: SearchStats,
    ) -> Tuple[np.ndarray, float]:
        """One Expand recursion (Algorithm 11).

        *reach* is the current frontier as a dense per-node array (0 for
        nodes not on the frontier); returns the next frontier in the same
        form together with its largest reach (0 when empty).
        """
        n_topics = plan.n_topics
        next_reach = np.zeros_like(reach)
        # Running max of the next frontier: entries are only ever
        # inserted or raised, never lowered, so the max is monotone.
        next_max = 0.0
        # The caller only enters a round while an active topic sits
        # outside the top-k; the lexsort membership test is re-run only
        # when scores or the active set actually changed since.
        topk_dirty = False
        # Deterministic order: strongest connection to v first. Processing
        # in descending weight lets the mid-round bound use the next
        # unprocessed weight as maxEP, so the round can stop early
        # (Algorithm 11 lines 13-14 check termination per topic pass).
        nodes = np.flatnonzero(reach)
        order = np.lexsort((nodes, -reach[nodes]))
        ordered = nodes[order].tolist()
        ordered_weights = reach[nodes[order]].tolist()
        last = len(ordered) - 1
        for position, node in enumerate(ordered):
            if expanded[node]:
                continue
            expanded[node] = True
            weight_to_v = ordered_weights[position]
            entry_u = self._entry(node)
            stats.entries_probed += 1
            # Un-consumed representatives of still-active topics, matched
            # against Γ(u) via the plan's cached probe of this node.
            remaining = ~consumed & active[plan.rep_topic]
            n_remaining_reps = int(np.count_nonzero(remaining))
            stats.representatives_touched += n_remaining_reps
            if n_remaining_reps:
                found, probs_full = plan.probe(node, entry_u)
                hit = np.flatnonzero(found & remaining)
                if hit.size:
                    weights = plan.rep_weights[hit]
                    topic_of_hit = plan.rep_topic[hit]
                    gains = np.bincount(
                        topic_of_hit,
                        weights=weight_to_v * probs_full[hit] * weights,
                        minlength=n_topics,
                    )
                    consumed_weight = np.bincount(
                        topic_of_hit, weights=weights, minlength=n_topics
                    )
                    consumed[hit] = True
                    n_remaining -= np.bincount(
                        topic_of_hit, minlength=n_topics
                    )
                    gained = np.flatnonzero(gains)
                    if gained.size:
                        topk_dirty = True
                        scores[gained] += gains[gained]
                        # Decrement instead of re-summing the survivors;
                        # pin to 0 when the pool empties so float drift
                        # cannot leave residual bound.
                        remaining_weight[gained] = np.where(
                            n_remaining[gained] > 0,
                            remaining_weight[gained] - consumed_weight[gained],
                            0.0,
                        )
                        for topic in gained.tolist():
                            tracker.update(topic, float(scores[topic]))
            marked_u = entry_u.marked_array
            if marked_u.size:
                _, marked_probs = entry_u.marked_pairs()
                reaches = weight_to_v * marked_probs
                # Insert-time filtering against *expanded*: nodes expanded
                # later in this round keep the entry they already earned,
                # so the next frontier's contents (and hence the bounds)
                # match the per-node reference exactly.
                better = np.flatnonzero(
                    (reaches > next_reach[marked_u]) & ~expanded[marked_u]
                )
                if better.size:
                    gained_reach = reaches[better]
                    next_reach[marked_u[better]] = gained_reach
                    top = float(gained_reach.max())
                    if top > next_max:
                        next_max = top
            # Mid-round pruning: anything still to come is bounded by the
            # largest unprocessed frontier weight (this round or the next).
            pending_max = (
                ordered_weights[position + 1] if position < last else 0.0
            )
            round_max_ep = pending_max if pending_max > next_max else next_max
            if self._prune(
                active, scores, remaining_weight, n_remaining, tracker,
                round_max_ep, stats,
            ):
                topk_dirty = True
            if topk_dirty:
                topk_dirty = False
                if not self._active_outside_topk(
                    active, scores, plan.label_rank, k
                ):
                    return next_reach, next_max
        self._prune(
            active, scores, remaining_weight, n_remaining, tracker, next_max,
            stats,
        )
        return next_reach, next_max
