"""Top-k personalized influential topic search - Algorithms 10 & 11 (S22).

Online stage. Given a query user ``v`` and keyword query ``q``:

1. fetch the q-related topics and their summaries (representative node
   sets with local weights);
2. for each topic, aggregate the influence of the representatives that
   appear in ``Γ(v)`` (the propagation entry of ``v``) - one hash lookup
   per representative, no graph traversal;
3. prune topics whose influence upper bound (current score + remaining
   representative weight × ``maxEP``) cannot reach the current top-k;
4. while un-pruned topics remain outside the current top-k, *expand*
   through the marked frontier: probe ``Γ(u)`` of marked nodes ``u``,
   discounting by ``Γ(v)[u]`` (DESIGN.md note: Algorithm 11's pseudocode
   omits this factor; including it is required for the bound in step 3 to
   be meaningful, and is the reading consistent with §5.1's path
   semantics).

The returned ranking is deterministic: ties break on topic label.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple, Union

from .._utils import require_in_range
from ..exceptions import ConfigurationError, QueryError
from ..topics import KeywordQuery, TopicIndex
from .propagation import PropagationIndex
from .summarization import TopicSummary

__all__ = ["SearchResult", "SearchStats", "PersonalizedSearcher"]

SummaryProvider = Union[Mapping[int, TopicSummary], Callable[[int], TopicSummary]]


@dataclass(frozen=True)
class SearchResult:
    """One ranked topic.

    Attributes
    ----------
    topic_id / label:
        The topic.
    influence:
        Aggregated (approximate) influence of the topic on the query user.
    """

    topic_id: int
    label: str
    influence: float


@dataclass
class SearchStats:
    """Work accounting for one search (used by the efficiency benches).

    Attributes
    ----------
    topics_considered:
        Number of q-related topics.
    topics_pruned:
        Topics eliminated by the upper-bound test before full evaluation.
    entries_probed:
        Propagation entries consulted (1 for the user + 1 per expanded
        frontier node).
    expansion_rounds:
        Number of Expand recursions executed.
    representatives_touched:
        Representative-weight lookups performed.
    """

    topics_considered: int = 0
    topics_pruned: int = 0
    entries_probed: int = 0
    expansion_rounds: int = 0
    representatives_touched: int = 0


class PersonalizedSearcher:
    """Executes Algorithm 10 (with Algorithm 11's Expand) over an index stack.

    Parameters
    ----------
    topic_index:
        The topic space (query -> q-related topics, Algorithm 10 line 1).
    summaries:
        Topic summaries: either a mapping ``topic_id -> TopicSummary`` or a
        callable (e.g. a cached summarizer) with that signature.
    propagation_index:
        The §5.1 personalized propagation index.
    max_expand_rounds:
        Recursion cap for Expand; the paper recurses until no frontier
        remains, which the cap also allows (set it high) but bounds.
    """

    def __init__(
        self,
        topic_index: TopicIndex,
        summaries: SummaryProvider,
        propagation_index: PropagationIndex,
        *,
        max_expand_rounds: int = 8,
    ):
        require_in_range("max_expand_rounds", max_expand_rounds, 0)
        self._topic_index = topic_index
        self._summaries = summaries
        self._propagation = propagation_index
        self._max_expand_rounds = int(max_expand_rounds)

    # ------------------------------------------------------------------
    def _summary(self, topic_id: int) -> TopicSummary:
        if callable(self._summaries):
            return self._summaries(topic_id)
        try:
            return self._summaries[topic_id]
        except KeyError:
            raise ConfigurationError(
                f"no summary available for topic {topic_id}"
            ) from None

    @staticmethod
    def _kth_best(scores: Dict[int, float], k: int) -> float:
        """``min(T^k)`` - the k-th best current score (or -inf)."""
        if len(scores) < k:
            return float("-inf")
        return heapq.nlargest(k, scores.values())[-1]

    @staticmethod
    def _top_k_ids(scores: Dict[int, float], labels: Dict[int, str], k: int) -> Set[int]:
        ranked = sorted(scores, key=lambda t: (-scores[t], labels[t]))
        return set(ranked[:k])

    # ------------------------------------------------------------------
    def search(
        self,
        user: int,
        query: Union[str, KeywordQuery],
        k: int,
    ) -> Tuple[List[SearchResult], SearchStats]:
        """Top-k most influential q-related topics for *user*.

        Returns the ranked results (length <= k; shorter when fewer topics
        match the query) and the work statistics.
        """
        require_in_range("k", k, 1)
        stats = SearchStats()
        topic_ids = self._topic_index.related_topics(query)
        stats.topics_considered = len(topic_ids)
        if not topic_ids:
            return [], stats

        entry_v = self._propagation.entry(user)
        stats.entries_probed += 1
        gamma_v = entry_v.gamma

        labels = {t: self._topic_index.label(t) for t in topic_ids}
        heap: Dict[int, float] = {}
        remaining: Dict[int, Dict[int, float]] = {}
        remaining_weight: Dict[int, float] = {}

        # Algorithm 10 lines 4-13: aggregate in-index representatives.
        for topic_id in topic_ids:
            summary = self._summary(topic_id)
            weights = dict(summary.weights)
            influence = 0.0
            unconsumed = 0.0
            for rep in list(weights):
                stats.representatives_touched += 1
                probability = gamma_v.get(rep)
                if probability is not None:
                    influence += probability * weights.pop(rep)
                else:
                    unconsumed += weights[rep]
            heap[topic_id] = influence
            remaining[topic_id] = weights
            remaining_weight[topic_id] = unconsumed

        # Lines 14-20: initial pruning against the marked-frontier bound.
        frontier: Dict[int, float] = {
            u: gamma_v[u] for u in entry_v.marked
        }
        max_ep = max(frontier.values(), default=0.0)
        active = set(topic_ids)
        self._prune(active, heap, remaining, remaining_weight, max_ep, k, labels, stats)

        # Lines 21-22 + Algorithm 11: expand while an active topic is
        # outside the current top-k.
        expanded: Set[int] = set()
        rounds = 0
        while (
            frontier
            and rounds < self._max_expand_rounds
            and active - self._top_k_ids(heap, labels, k)
        ):
            rounds += 1
            stats.expansion_rounds += 1
            frontier = self._expand_round(
                frontier, expanded, active, heap, remaining, remaining_weight,
                k, labels, stats,
            )

        ranked = sorted(heap, key=lambda t: (-heap[t], labels[t]))[:k]
        results = [
            SearchResult(topic_id=t, label=labels[t], influence=heap[t])
            for t in ranked
        ]
        return results, stats

    # ------------------------------------------------------------------
    def _prune(
        self,
        active: Set[int],
        heap: Dict[int, float],
        remaining: Dict[int, Dict[int, float]],
        remaining_weight: Dict[int, float],
        max_ep: float,
        k: int,
        labels: Dict[int, str],
        stats: SearchStats,
    ) -> None:
        """Remove topics that can no longer change the top-k (lines 17-20)."""
        kth = self._kth_best(heap, k)
        for topic_id in list(active):
            exhausted = not remaining[topic_id]
            upper_bound = heap[topic_id] + remaining_weight[topic_id] * max_ep
            if exhausted or kth >= upper_bound:
                active.discard(topic_id)
                if not exhausted:
                    stats.topics_pruned += 1

    def _expand_round(
        self,
        frontier: Dict[int, float],
        expanded: Set[int],
        active: Set[int],
        heap: Dict[int, float],
        remaining: Dict[int, Dict[int, float]],
        remaining_weight: Dict[int, float],
        k: int,
        labels: Dict[int, str],
        stats: SearchStats,
    ) -> Dict[int, float]:
        """One Expand recursion (Algorithm 11); returns the next frontier."""
        next_frontier: Dict[int, float] = {}
        # Deterministic order: strongest connection to v first. Processing
        # in descending weight lets the mid-round bound use the next
        # unprocessed weight as maxEP, so the round can stop early
        # (Algorithm 11 lines 13-14 check termination per topic pass).
        ordered = sorted(frontier, key=lambda u: (-frontier[u], u))
        for position, node in enumerate(ordered):
            if node in expanded:
                continue
            expanded.add(node)
            weight_to_v = frontier[node]
            entry_u = self._propagation.entry(node)
            stats.entries_probed += 1
            gamma_u = entry_u.gamma
            for topic_id in list(active):
                weights = remaining[topic_id]
                gained = 0.0
                consumed = 0.0
                for rep in list(weights):
                    stats.representatives_touched += 1
                    probability = gamma_u.get(rep)
                    if probability is not None:
                        weight = weights.pop(rep)
                        gained += weight_to_v * probability * weight
                        consumed += weight
                if gained:
                    heap[topic_id] += gained
                    # Decrement instead of re-summing the survivors - O(1)
                    # per consumed representative. Pin to 0 when the pool
                    # empties so float drift cannot leave residual bound.
                    remaining_weight[topic_id] = (
                        remaining_weight[topic_id] - consumed if weights else 0.0
                    )
            for marked in entry_u.marked:
                if marked in expanded:
                    continue
                reach = weight_to_v * gamma_u[marked]
                if reach > next_frontier.get(marked, 0.0):
                    next_frontier[marked] = reach
            # Mid-round pruning: anything still to come is bounded by the
            # largest unprocessed frontier weight (this round or the next).
            pending_max = frontier[ordered[position + 1]] if position + 1 < len(ordered) else 0.0
            round_max_ep = max(pending_max, max(next_frontier.values(), default=0.0))
            self._prune(
                active, heap, remaining, remaining_weight, round_max_ep, k,
                labels, stats,
            )
            if not active - self._top_k_ids(heap, labels, k):
                return next_frontier
        max_ep = max(next_frontier.values(), default=0.0)
        self._prune(active, heap, remaining, remaining_weight, max_ep, k, labels, stats)
        return next_frontier
