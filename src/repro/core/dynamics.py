"""Dynamic maintenance of the offline artifacts (paper §4.4).

"The offline pre-processing is updated after a period of time when the
social network and topics have changed." This module implements that
refresh *incrementally* instead of rebuilding everything:

* :func:`apply_topic_update` - users start/stop discussing topics. A new
  :class:`~repro.topics.TopicIndex` is derived, and only the summaries of
  topics whose member sets actually changed are invalidated; unchanged
  topics keep their cached summaries (re-keyed, since topic ids are
  label-ordered).
* :func:`invalidate_propagation` - edges changed around a set of nodes.
  Every cached propagation entry that could see those nodes (as target,
  member of Γ, or marked frontier) is dropped and will rebuild lazily.

Both operations leave the walk index untouched; it is a Monte-Carlo sample
whose staleness degrades gracefully, and the paper likewise rebuilds it
only "after a period of time". :func:`refresh_walk_index` forces that
rebuild when desired.

**Answer-tier invalidation seam.** A serving deployment that applies
deltas in place (rather than hot-swapping a new engine, which clears
every tier structurally) must also invalidate the
:class:`~repro.core.serve_facade.ServingEngine` answer tier, or cached
top-k answers will outlive the data they were computed from. The
contract:

* a topic/summary change (:func:`apply_topic_update`) can move *any*
  answer -> call ``engine.invalidate_answers()`` (full clear) alongside
  the searcher's ``invalidate_query_caches``;
* an edge change (:func:`invalidate_propagation`) only moves answers for
  users whose Γ actually changed -> call
  ``engine.invalidate_answers(users=changed_nodes)`` with the same node
  set passed here (compiled plans are user-independent and survive).

Wiring these calls into the delta path - so a streamed update batch
invalidates exactly the affected answers - is ROADMAP item 3's
vectorized-dynamics work; the hooks exist and are tested today.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from ..exceptions import ConfigurationError
from ..topics import TopicIndex
from .engine import PITEngine
from .propagation import PropagationIndex

__all__ = [
    "TopicUpdate",
    "updated_topic_index",
    "apply_topic_update",
    "invalidate_propagation",
    "refresh_walk_index",
]


@dataclass(frozen=True)
class TopicUpdate:
    """A batch of membership changes.

    Attributes
    ----------
    add:
        ``node -> labels`` the node newly discusses.
    remove:
        ``node -> labels`` the node no longer discusses.
    """

    add: Mapping[int, Tuple[str, ...]] = field(default_factory=dict)
    remove: Mapping[int, Tuple[str, ...]] = field(default_factory=dict)

    @staticmethod
    def adding(node: int, *labels: str) -> "TopicUpdate":
        """Convenience single-node addition."""
        return TopicUpdate(add={int(node): tuple(labels)})

    @staticmethod
    def removing(node: int, *labels: str) -> "TopicUpdate":
        """Convenience single-node removal."""
        return TopicUpdate(remove={int(node): tuple(labels)})

    def merged_with(self, other: "TopicUpdate") -> "TopicUpdate":
        """Combine two batches (other's changes applied after self's)."""
        add: Dict[int, Tuple[str, ...]] = {
            int(n): tuple(ls) for n, ls in self.add.items()
        }
        for node, labels in other.add.items():
            node = int(node)
            add[node] = tuple(add.get(node, ())) + tuple(labels)
        remove: Dict[int, Tuple[str, ...]] = {
            int(n): tuple(ls) for n, ls in self.remove.items()
        }
        for node, labels in other.remove.items():
            node = int(node)
            remove[node] = tuple(remove.get(node, ())) + tuple(labels)
        return TopicUpdate(add=add, remove=remove)


def updated_topic_index(index: TopicIndex, update: TopicUpdate) -> TopicIndex:
    """A new :class:`TopicIndex` with *update* applied.

    Removing a label a node does not carry is an error (it usually means
    the caller's view of the index is stale).
    """
    assignment: Dict[int, List[str]] = {}
    for node in range(index.n_nodes):
        labels = [index.label(t) for t in index.topics_of_node(node)]
        assignment[node] = labels
    for node, labels in update.remove.items():
        node = int(node)
        if not 0 <= node < index.n_nodes:
            raise ConfigurationError(f"node {node} outside the topic index")
        for label in labels:
            label = label.strip().lower()
            try:
                assignment[node].remove(label)
            except ValueError:
                raise ConfigurationError(
                    f"node {node} does not carry topic {label!r}"
                ) from None
    for node, labels in update.add.items():
        node = int(node)
        if not 0 <= node < index.n_nodes:
            raise ConfigurationError(f"node {node} outside the topic index")
        for label in labels:
            label = label.strip().lower()
            if label not in assignment[node]:
                assignment[node].append(label)
    populated = {n: ls for n, ls in assignment.items() if ls}
    return TopicIndex(index.n_nodes, populated)


def apply_topic_update(engine: PITEngine, update: TopicUpdate) -> Dict[str, int]:
    """Apply a :class:`TopicUpdate` to an engine in place.

    Re-keys the summary cache by label, keeps summaries whose member sets
    are unchanged, and drops the rest (they rebuild lazily on next use).

    Returns
    -------
    Statistics: ``{"kept": ..., "invalidated": ..., "topics": ...}``.
    """
    old_index = engine.topic_index
    new_index = updated_topic_index(old_index, update)

    kept = 0
    invalidated = 0
    new_summaries = {}
    old_by_label = {
        old_index.label(topic_id): summary
        for topic_id, summary in engine._summaries.items()
    }
    for label, summary in old_by_label.items():
        if label not in new_index:
            invalidated += 1
            continue
        new_id = new_index.resolve(label)
        old_members = old_index.topic_nodes(label).tolist()
        new_members = new_index.topic_nodes(label).tolist()
        if old_members == new_members:
            # Same member set: the summary is still exact; re-key it.
            new_summaries[new_id] = type(summary)(new_id, dict(summary.weights))
            kept += 1
        else:
            invalidated += 1

    engine._topic_index = new_index
    engine._summaries = new_summaries
    engine._summarizer = None  # summarizers hold the old index; rebuild lazily
    # Also drops compiled query plans and cached summary arrays - both are
    # keyed by (possibly re-numbered) topic ids of the old index.
    engine._searcher.set_topic_index(new_index)
    return {
        "kept": kept,
        "invalidated": invalidated,
        "topics": new_index.n_topics,
    }


def invalidate_propagation(
    index: PropagationIndex, affected_nodes: Iterable[int]
) -> int:
    """Drop cached entries that could observe *affected_nodes*.

    An entry must be rebuilt when its target is affected or when any
    affected node appears in its Γ or marked sets (a changed edge there
    can alter aggregated probabilities or marking). Returns the number of
    entries dropped.
    """
    affected: Set[int] = {int(v) for v in affected_nodes}
    if not affected:
        return 0
    doomed = []
    for node, entry in index._entries.items():
        if (
            node in affected
            or affected & set(entry.gamma)
            or affected & entry.marked
        ):
            doomed.append(node)
    for node in doomed:
        del index._entries[node]
    return len(doomed)


def refresh_walk_index(engine: PITEngine) -> None:
    """Force the walk index (and everything derived from it) to rebuild."""
    engine._walk_index = None
    engine._summarizer = None
    engine._summaries = {}
