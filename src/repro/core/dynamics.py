"""Dynamic maintenance of the offline artifacts (paper §4.4).

"The offline pre-processing is updated after a period of time when the
social network and topics have changed." This module implements that
refresh *incrementally* instead of rebuilding everything:

* :class:`GraphDelta` / :func:`apply_delta_to_graph` - a batch of edge
  inserts, deletes, probability re-weights, and time-decay aging is
  applied to the immutable :class:`~repro.graph.SocialGraph` in one
  vectorized pass over its CSR arrays (no per-edge Python loop).
* :func:`affected_nodes` - the set of nodes whose propagation entry Γ
  can possibly change, computed with vectorized closure kernels from
  :mod:`repro.graph.traversal` instead of a per-entry set intersection.
  With ``theta`` given (the index's pruning threshold) the kernel is the
  probability-bounded :func:`~repro.graph.traversal.theta_forward_closure`:
  the entry DFS prunes any branch whose running product drops below
  theta, and every consultation of a changed edge ``(u, w)`` - the edge
  itself, ``w``'s in-list, or ``w``'s lookahead bound - happens while the
  DFS from ``v`` is standing at ``w`` with path product ``P(w -> v) >=
  theta``. So ``Γ(v)`` can only change when some walk ``w -> v`` clears
  theta, and the theta-closure of the changed edges' targets (in both
  the old and the new graph) is a sound superset that stays *small* even
  on graphs whose plain transitive closure is everything. Without
  ``theta`` the plain packed-bitset
  :func:`~repro.graph.traversal.forward_closure` gives the coarser
  reachability superset.
* :meth:`~repro.core.propagation.PropagationIndex.rebuilt_for` /
  :func:`~repro.core.shards.refresh_sharded_index` - targeted partial
  rebuild: only affected entries are recomputed; unaffected entries (and
  for the sharded backend, whole clean shard files) carry over.
* :func:`apply_graph_delta` - the engine-level orchestration of the
  above, plus incremental summary repair: only topics whose member set
  intersects the affected region lose their cached summary.
* :func:`apply_topic_update` - users start/stop discussing topics. A new
  :class:`~repro.topics.TopicIndex` is derived, and only the summaries of
  topics whose member sets actually changed are invalidated; unchanged
  topics keep their cached summaries (re-keyed, since topic ids are
  label-ordered).
* :func:`invalidate_propagation` - legacy coarse invalidation: drop every
  cached entry that could see a set of nodes. Requires the in-memory
  backend; a shard-served index raises
  :class:`~repro.exceptions.ConfigurationError` (use the delta path,
  which rewrites only dirty shards).

The walk index is left untouched by all of these; it is a Monte-Carlo
sample whose staleness degrades gracefully, and the paper likewise
rebuilds it only "after a period of time". :func:`refresh_walk_index`
forces that rebuild when desired.

**Answer-tier invalidation contract.** A serving deployment that applies
deltas in place (rather than hot-swapping a new engine, which clears
every tier structurally) must also invalidate the
:class:`~repro.core.serve_facade.ServingEngine` answer tier, or cached
top-k answers will outlive the data they were computed from. The
contract:

* a topic/summary change (:func:`apply_topic_update`) can move *any*
  answer -> call ``engine.invalidate_answers()`` (full clear) alongside
  the searcher's ``invalidate_query_caches``;
* a graph delta only moves answers for users whose search could observe
  a changed entry. The search probes a *chain* of entries - the user's
  own, then the transitive marked frontier - and each link of the chain
  is a theta-bounded path, so the chain composes into plain
  reachability: if any probed entry changed (it lies in the
  theta-closure of a changed edge's target ``w``), then ``w`` reaches
  the user in the old or the new graph. Invalidation therefore uses the
  *plain* closure (``affected_nodes`` without ``theta``) for the answer
  tier, while the entry and plan-probe caches only evict the
  theta-affected nodes (entries outside the theta-closure are
  bit-identical). Unaffected users' cached answers provably still match
  a recomputation, including the deterministic work counters: an
  unchanged entry's members reach it above theta in *both* graphs, so
  the recomputed search replays the cached one probe for probe.

:meth:`ServingEngine.apply_delta
<repro.core.serve_facade.ServingEngine.apply_delta>` wires this contract
into the serving stack; the daemon exposes it as ``POST /admin/delta``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

import numpy as np

from ..exceptions import ConfigurationError, EdgeError
from ..graph import SocialGraph, forward_closure, theta_forward_closure
from ..obs import MetricsRegistry, get_registry
from ..topics import TopicIndex
from .engine import PITEngine
from .propagation import PropagationIndex

__all__ = [
    "GraphDelta",
    "DeltaApplication",
    "apply_delta_to_graph",
    "affected_nodes",
    "apply_graph_delta",
    "TopicUpdate",
    "updated_topic_index",
    "apply_topic_update",
    "invalidate_propagation",
    "refresh_walk_index",
]

#: Ceiling on the packed closure matrices (two graphs worth). Past this
#: the conservative answer "every node" is cheaper than the bitsets.
_CLOSURE_BUDGET_BYTES = 64 << 20


def _registry(metrics: Optional[MetricsRegistry]) -> MetricsRegistry:
    return metrics if metrics is not None else get_registry()


# ---------------------------------------------------------------------------
# Graph deltas
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GraphDelta:
    """One batch of streaming edge updates.

    Attributes
    ----------
    inserts:
        ``(source, target, probability)`` triples to add. The edges must
        not already exist.
    deletes:
        ``(source, target)`` pairs to remove. The edges must exist.
    reweights:
        ``(source, target, probability)`` triples replacing the
        probability of existing edges.
    decay:
        Time-decay factor in ``(0, 1]`` multiplied into every surviving
        edge probability (including reweighted values; inserted edges
        join at their stated post-decay probability). ``1.0`` disables
        aging.
    decay_floor:
        Edges whose decayed probability falls below this floor age out of
        the graph entirely.

    The node set is fixed: a delta edits edges, never ``n_nodes``. Each
    edge may appear at most once across the whole batch.
    """

    inserts: Tuple[Tuple[int, int, float], ...] = ()
    deletes: Tuple[Tuple[int, int], ...] = ()
    reweights: Tuple[Tuple[int, int, float], ...] = ()
    decay: float = 1.0
    decay_floor: float = 0.0

    def __post_init__(self):
        object.__setattr__(
            self,
            "inserts",
            tuple((int(s), int(t), float(p)) for s, t, p in self.inserts),
        )
        object.__setattr__(
            self,
            "deletes",
            tuple((int(s), int(t)) for s, t in self.deletes),
        )
        object.__setattr__(
            self,
            "reweights",
            tuple((int(s), int(t), float(p)) for s, t, p in self.reweights),
        )
        if not 0.0 < self.decay <= 1.0:
            raise ConfigurationError(
                f"decay must lie in (0, 1], got {self.decay!r}"
            )
        if not 0.0 <= self.decay_floor < 1.0:
            raise ConfigurationError(
                f"decay_floor must lie in [0, 1), got {self.decay_floor!r}"
            )

    # -- convenience constructors --------------------------------------
    @staticmethod
    def inserting(*edges: Tuple[int, int, float]) -> "GraphDelta":
        """A delta that only adds edges."""
        return GraphDelta(inserts=tuple(edges))

    @staticmethod
    def deleting(*pairs: Tuple[int, int]) -> "GraphDelta":
        """A delta that only removes edges."""
        return GraphDelta(deletes=tuple(pairs))

    @staticmethod
    def reweighting(*edges: Tuple[int, int, float]) -> "GraphDelta":
        """A delta that only re-weights existing edges."""
        return GraphDelta(reweights=tuple(edges))

    @staticmethod
    def aging(decay: float, *, floor: float = 0.0) -> "GraphDelta":
        """A pure time-decay step (every edge ages, none are edited)."""
        return GraphDelta(decay=decay, decay_floor=floor)

    @property
    def is_empty(self) -> bool:
        """Whether applying this delta is a no-op."""
        return (
            not self.inserts
            and not self.deletes
            and not self.reweights
            and self.decay == 1.0
        )

    @property
    def n_edits(self) -> int:
        """Number of explicitly edited edges (decay not counted)."""
        return len(self.inserts) + len(self.deletes) + len(self.reweights)

    def merged_with(self, other: "GraphDelta") -> "GraphDelta":
        """Concatenate two batches (valid when their edge sets are disjoint
        and at most one of them ages)."""
        if self.decay != 1.0 and other.decay != 1.0:
            raise ConfigurationError(
                "cannot merge two aging deltas (decay order is ambiguous)"
            )
        return GraphDelta(
            inserts=self.inserts + other.inserts,
            deletes=self.deletes + other.deletes,
            reweights=self.reweights + other.reweights,
            decay=self.decay * other.decay,
            decay_floor=max(self.decay_floor, other.decay_floor),
        )


@dataclass(frozen=True)
class DeltaApplication:
    """What :func:`apply_delta_to_graph` actually changed.

    ``seeds`` are the target endpoints of every edited or aged-out edge -
    the starting points of the affected-set closure. ``removed`` holds
    the ``(sources, targets)`` arrays of the edges the batch dropped
    (deletes plus aged-out), so the closure can run once over the union
    topology instead of once per graph. ``full`` marks a decay step,
    where every surviving edge changed and the affected set degenerates
    to every node (a full - but still single-pass - rebuild).
    """

    n_inserted: int
    n_deleted: int
    n_reweighted: int
    n_aged: int
    seeds: np.ndarray
    full: bool
    removed: Optional[Tuple[np.ndarray, np.ndarray]] = None


def _delta_arrays(entries, width: int) -> Tuple[np.ndarray, ...]:
    """Split ``(s, t[, p])`` tuples into parallel int64/float64 arrays."""
    count = len(entries)
    src = np.fromiter((e[0] for e in entries), np.int64, count=count)
    tgt = np.fromiter((e[1] for e in entries), np.int64, count=count)
    if width == 2:
        return src, tgt
    prob = np.fromiter((e[2] for e in entries), np.float64, count=count)
    return src, tgt, prob


def apply_delta_to_graph(
    graph: SocialGraph, delta: GraphDelta
) -> Tuple[SocialGraph, DeltaApplication]:
    """Apply *delta* to *graph*, returning the edited graph and a report.

    One vectorized pass: the CSR edge set comes out as sorted parallel
    arrays, deletes/reweights are located with ``searchsorted`` on the
    ``source * n + target`` key, decay is a single multiply, and the
    edits are spliced directly into both CSR faces - pure sorted-run
    deletions and insertions at already-known positions, so the new
    graph materializes in O(E) memcpy with no O(E log E) re-sort.

    Raises
    ------
    ConfigurationError
        When a delete/reweight names a missing edge, an insert names an
        existing edge, or the same edge appears twice in the batch - all
        signs the caller's view of the graph is stale.
    """
    n = graph.n_nodes
    ins_src, ins_tgt, ins_prob = _delta_arrays(delta.inserts, 3)
    del_src, del_tgt = _delta_arrays(delta.deletes, 2)
    rw_src, rw_tgt, rw_prob = _delta_arrays(delta.reweights, 3)
    graph.validate_nodes(
        np.concatenate([ins_src, ins_tgt, del_src, del_tgt, rw_src, rw_tgt])
    )

    sources, targets, probs = graph.edge_arrays()
    keys = sources * n + targets  # ascending: CSR order sorts (s, t)
    ins_keys = ins_src * n + ins_tgt
    del_keys = del_src * n + del_tgt
    rw_keys = rw_src * n + rw_tgt
    batch = np.concatenate([ins_keys, del_keys, rw_keys])
    if np.unique(batch).size != batch.size:
        raise ConfigurationError(
            "delta touches the same edge more than once"
        )

    def _locate(subkeys: np.ndarray, what: str) -> np.ndarray:
        if subkeys.size == 0:
            return np.empty(0, dtype=np.int64)
        pos = np.searchsorted(keys, subkeys)
        safe = np.minimum(pos, max(keys.size - 1, 0))
        found = (pos < keys.size) & (
            keys[safe] == subkeys if keys.size else False
        )
        if not np.all(found):
            i = int(np.argmax(~found))
            raise ConfigurationError(
                f"cannot {what} edge "
                f"{int(subkeys[i] // n)} -> {int(subkeys[i] % n)}: "
                f"no such edge"
            )
        return pos

    del_pos = _locate(del_keys, "delete")
    rw_pos = _locate(rw_keys, "reweight")
    if ins_keys.size and keys.size:
        pos = np.searchsorted(keys, ins_keys)
        safe = np.minimum(pos, keys.size - 1)
        exists = (pos < keys.size) & (keys[safe] == ins_keys)
        if np.any(exists):
            i = int(np.argmax(exists))
            raise ConfigurationError(
                f"cannot insert edge {int(ins_src[i])} -> "
                f"{int(ins_tgt[i])}: edge already exists"
            )

    if ins_prob.size and (
        np.any(ins_prob <= 0.0) or np.any(ins_prob > 1.0)
    ):
        raise EdgeError("transition probabilities must lie in (0, 1]")
    if rw_prob.size and (np.any(rw_prob <= 0.0) or np.any(rw_prob > 1.0)):
        raise EdgeError("transition probabilities must lie in (0, 1]")
    if np.any(ins_src == ins_tgt):
        i = int(np.argmax(ins_src == ins_tgt))
        raise EdgeError(
            f"self-loop on node {int(ins_src[i])} is not allowed"
        )

    new_probs = probs.copy()
    new_probs[rw_pos] = rw_prob
    keep = np.ones(keys.size, dtype=bool)
    keep[del_pos] = False
    n_aged = 0
    aged_targets = np.empty(0, dtype=np.int64)
    full = delta.decay != 1.0
    if full:
        new_probs *= delta.decay
        aged = keep & (new_probs < delta.decay_floor)
        n_aged = int(np.count_nonzero(aged))
        aged_targets = targets[aged]
        keep &= ~aged

    # Splice the out face: survivors keep their CSR order, and every
    # insert lands at its searchsorted position (ties between inserts
    # resolve in key order, so the result stays sorted).
    ins_order = np.argsort(ins_keys, kind="stable")
    pos = np.searchsorted(keys[keep], ins_keys[ins_order])
    out_sources = np.insert(sources[keep], pos, ins_src[ins_order])
    out_targets = np.insert(targets[keep], pos, ins_tgt[ins_order])
    out_probs = np.insert(new_probs[keep], pos, ins_prob[ins_order])
    out_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(out_sources, minlength=n), out=out_indptr[1:])

    # Mirror the same edits onto the in face (sorted by target, then
    # source): the removed/reweighted edges are located by the swapped
    # key, and both faces see bit-identical probability values.
    in_indptr_old = graph._in_indptr
    in_sources_old = graph._in_sources
    in_tgt_rep = np.repeat(
        np.arange(n, dtype=np.int64), np.diff(in_indptr_old)
    )
    in_keys = in_tgt_rep * n + in_sources_old
    in_keep = np.ones(in_keys.size, dtype=bool)
    removed = keys[~keep]
    if removed.size:
        swapped = np.sort((removed % n) * n + removed // n)
        in_keep[np.searchsorted(in_keys, swapped)] = False
    in_probs_new = graph._in_probs.copy()
    if rw_keys.size:
        rw_in = rw_tgt * n + rw_src
        order = np.argsort(rw_in, kind="stable")
        in_probs_new[np.searchsorted(in_keys, rw_in[order])] = rw_prob[
            order
        ]
    if full:
        in_probs_new *= delta.decay
    ins_in = ins_tgt * n + ins_src
    order = np.argsort(ins_in, kind="stable")
    pos = np.searchsorted(in_keys[in_keep], ins_in[order])
    in_sources_new = np.insert(in_sources_old[in_keep], pos, ins_src[order])
    in_targets_new = np.insert(in_tgt_rep[in_keep], pos, ins_tgt[order])
    in_probs_arr = np.insert(in_probs_new[in_keep], pos, ins_prob[order])
    in_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(in_targets_new, minlength=n), out=in_indptr[1:])

    new_graph = SocialGraph._from_csr(
        n,
        (
            out_indptr,
            np.ascontiguousarray(out_targets),
            np.ascontiguousarray(out_probs),
        ),
        (
            in_indptr,
            np.ascontiguousarray(in_sources_new),
            np.ascontiguousarray(in_probs_arr),
        ),
    )
    seeds = np.unique(
        np.concatenate([ins_tgt, del_tgt, rw_tgt, aged_targets])
    )
    return new_graph, DeltaApplication(
        n_inserted=int(ins_keys.size),
        n_deleted=int(del_keys.size),
        n_reweighted=int(rw_keys.size),
        n_aged=n_aged,
        seeds=seeds,
        full=full,
        removed=(removed // n, removed % n),
    )


def affected_nodes(
    old_graph: SocialGraph,
    new_graph: SocialGraph,
    application: DeltaApplication,
    *,
    theta: Optional[float] = None,
) -> np.ndarray:
    """Sorted ids of every node whose Γ (or marked frontier) can change.

    An edge ``(u, w)`` lies on a path into ``v`` - and can therefore
    change ``Γ(v)`` membership, aggregated probabilities, or marking -
    only when ``w`` reaches ``v`` (or ``v == w``). The closure of the
    changed edges' targets, taken over both the old and the new graph
    (deletions matter in the old, insertions in the new), is therefore a
    sound conservative superset.

    With *theta* - the propagation index's pruning threshold - the
    closure is probability-bounded
    (:func:`~repro.graph.traversal.theta_forward_closure`): the entry
    DFS only observes an edge while standing on a walk of product >=
    theta, so nodes beyond the theta horizon keep bit-identical entries
    and the affected set stays small even on strongly connected graphs.
    Without *theta* the plain reachability closure is returned - the
    right set for answer-tier invalidation, where theta-paths compose
    across probe chains (see the module docstring).

    A decay step (``application.full``) or a seed set too large for the
    bitset budget returns every node.
    """
    n = old_graph.n_nodes
    if application.full:
        return np.arange(n, dtype=np.int64)
    seeds = application.seeds
    if seeds.size == 0:
        return np.empty(0, dtype=np.int64)
    if theta is not None:
        return np.union1d(
            theta_forward_closure(old_graph, seeds, theta),
            theta_forward_closure(new_graph, seeds, theta),
        )
    n_words = (seeds.size + 63) // 64
    if n_words * 8 * n > _CLOSURE_BUDGET_BYTES:
        return np.arange(n, dtype=np.int64)
    # The old graph is the new one minus the inserts plus the removed
    # edges, so one run over the new graph augmented with the removed
    # edges covers the union of both graphs' closures.
    removed = application.removed
    if removed is not None:
        extra = removed if removed[0].size else None
        return forward_closure(new_graph, seeds, extra_edges=extra)
    return np.union1d(
        forward_closure(old_graph, seeds),
        forward_closure(new_graph, seeds),
    )


def apply_graph_delta(
    engine: PITEngine, delta: GraphDelta
) -> Dict[str, int]:
    """Apply a :class:`GraphDelta` to a :class:`PITEngine` in place.

    Edits the graph, partially rebuilds the propagation index (only the
    theta-affected entries), and repairs summaries incrementally: topics
    whose member set misses the plain-reachable region keep their cached
    summary; the rest rebuild lazily against the new graph on next use.
    The walk index is dropped (it samples the old graph).

    Returns statistics: counts of the edge edits, the affected-set size,
    and the summary repair outcome.
    """
    registry = engine.propagation_index._registry()
    with registry.timer("dynamics.apply_delta_seconds"):
        old_graph = engine.graph
        new_graph, application = apply_delta_to_graph(old_graph, delta)
        with registry.timer("dynamics.affected_seconds"):
            affected = affected_nodes(
                old_graph,
                new_graph,
                application,
                theta=engine.propagation_index.theta,
            )
            reachable = affected_nodes(old_graph, new_graph, application)
        with registry.timer("dynamics.refresh_seconds"):
            new_index = engine.propagation_index.rebuilt_for(
                new_graph, affected
            )
        refresh = dict(new_index.last_refresh_stats or {})
        mask = np.zeros(new_graph.n_nodes, dtype=bool)
        mask[reachable] = True
        kept: Dict[int, object] = {}
        repaired = 0
        for topic_id, summary in engine.summaries.items():
            members = engine.topic_index.topic_nodes(topic_id)
            touched = bool(np.any(mask[members])) or any(
                mask[rep] for rep in summary.weights
            )
            if touched:
                repaired += 1
            else:
                kept[topic_id] = summary
        engine.replace_graph(new_graph, new_index, kept_summaries=kept)
        registry.inc("dynamics.deltas_applied")
        registry.inc("dynamics.edges_inserted", application.n_inserted)
        registry.inc("dynamics.edges_deleted", application.n_deleted)
        registry.inc("dynamics.edges_reweighted", application.n_reweighted)
        registry.inc("dynamics.edges_aged_out", application.n_aged)
        registry.inc("dynamics.nodes_affected", int(affected.size))
        registry.inc("dynamics.nodes_reachable", int(reachable.size))
        registry.inc("dynamics.summaries_repaired", repaired)
        registry.inc("dynamics.summaries_kept", len(kept))
    return {
        "inserted": application.n_inserted,
        "deleted": application.n_deleted,
        "reweighted": application.n_reweighted,
        "aged_out": application.n_aged,
        "affected": int(affected.size),
        "reachable": int(reachable.size),
        "summaries_kept": len(kept),
        "summaries_repaired": repaired,
        **refresh,
    }


# ---------------------------------------------------------------------------
# Topic updates
# ---------------------------------------------------------------------------


def _dedup(labels: Iterable[str]) -> Tuple[str, ...]:
    """Order-preserving label dedup (a batch may add a label twice)."""
    seen: Set[str] = set()
    out: List[str] = []
    for label in labels:
        if label not in seen:
            seen.add(label)
            out.append(label)
    return tuple(out)


@dataclass(frozen=True)
class TopicUpdate:
    """A batch of membership changes.

    Attributes
    ----------
    add:
        ``node -> labels`` the node newly discusses.
    remove:
        ``node -> labels`` the node no longer discusses.
    """

    add: Mapping[int, Tuple[str, ...]] = field(default_factory=dict)
    remove: Mapping[int, Tuple[str, ...]] = field(default_factory=dict)

    @staticmethod
    def adding(node: int, *labels: str) -> "TopicUpdate":
        """Convenience single-node addition."""
        return TopicUpdate(add={int(node): tuple(labels)})

    @staticmethod
    def removing(node: int, *labels: str) -> "TopicUpdate":
        """Convenience single-node removal."""
        return TopicUpdate(remove={int(node): tuple(labels)})

    def merged_with(self, other: "TopicUpdate") -> "TopicUpdate":
        """Combine two batches (other's changes applied after self's).

        A label both batches add to (or remove from) the same node is
        kept once, in first-seen order - applying it twice would be
        idempotent anyway, and duplicated tuples broke downstream
        consumers that treat the tuples as sets.
        """
        add: Dict[int, Tuple[str, ...]] = {
            int(n): _dedup(ls) for n, ls in self.add.items()
        }
        for node, labels in other.add.items():
            node = int(node)
            add[node] = _dedup(add.get(node, ()) + tuple(labels))
        remove: Dict[int, Tuple[str, ...]] = {
            int(n): _dedup(ls) for n, ls in self.remove.items()
        }
        for node, labels in other.remove.items():
            node = int(node)
            remove[node] = _dedup(remove.get(node, ()) + tuple(labels))
        return TopicUpdate(add=add, remove=remove)


def updated_topic_index(index: TopicIndex, update: TopicUpdate) -> TopicIndex:
    """A new :class:`TopicIndex` with *update* applied.

    Removing a label a node does not carry is an error (it usually means
    the caller's view of the index is stale).
    """
    assignment: Dict[int, List[str]] = {}
    for node in range(index.n_nodes):
        labels = [index.label(t) for t in index.topics_of_node(node)]
        assignment[node] = labels
    for node, labels in update.remove.items():
        node = int(node)
        if not 0 <= node < index.n_nodes:
            raise ConfigurationError(f"node {node} outside the topic index")
        for label in labels:
            label = label.strip().lower()
            try:
                assignment[node].remove(label)
            except ValueError:
                raise ConfigurationError(
                    f"node {node} does not carry topic {label!r}"
                ) from None
    for node, labels in update.add.items():
        node = int(node)
        if not 0 <= node < index.n_nodes:
            raise ConfigurationError(f"node {node} outside the topic index")
        for label in labels:
            label = label.strip().lower()
            if label not in assignment[node]:
                assignment[node].append(label)
    populated = {n: ls for n, ls in assignment.items() if ls}
    return TopicIndex(index.n_nodes, populated)


def apply_topic_update(engine: PITEngine, update: TopicUpdate) -> Dict[str, int]:
    """Apply a :class:`TopicUpdate` to an engine in place.

    Re-keys the summary cache by label, keeps summaries whose member sets
    are unchanged, and drops the rest (they rebuild lazily on next use).
    The swap itself goes through the public
    :meth:`PITEngine.replace_topic_index` seam.

    Returns
    -------
    Statistics: ``{"kept": ..., "invalidated": ..., "topics": ...}``.
    """
    old_index = engine.topic_index
    new_index = updated_topic_index(old_index, update)

    kept = 0
    invalidated = 0
    new_summaries = {}
    old_by_label = {
        old_index.label(topic_id): summary
        for topic_id, summary in engine.summaries.items()
    }
    for label, summary in old_by_label.items():
        if label not in new_index:
            invalidated += 1
            continue
        new_id = new_index.resolve(label)
        old_members = old_index.topic_nodes(label).tolist()
        new_members = new_index.topic_nodes(label).tolist()
        if old_members == new_members:
            # Same member set: the summary is still exact; re-key it.
            new_summaries[new_id] = summary.with_topic_id(new_id)
            kept += 1
        else:
            invalidated += 1

    engine.replace_topic_index(new_index, new_summaries)
    return {
        "kept": kept,
        "invalidated": invalidated,
        "topics": new_index.n_topics,
    }


# ---------------------------------------------------------------------------
# Coarse invalidation (legacy seam) and walk-index refresh
# ---------------------------------------------------------------------------


def invalidate_propagation(
    index: PropagationIndex, affected_nodes: Iterable[int]
) -> int:
    """Drop cached entries that could observe *affected_nodes*.

    An entry must be rebuilt when its target is affected or when any
    affected node appears in its Γ or marked sets (a changed edge there
    can alter aggregated probabilities or marking). Returns the number of
    entries dropped.

    Raises
    ------
    ConfigurationError
        When the index serves from a mapped shard backend: shard-backed
        entries live in immutable artifact files that this per-entry
        invalidation cannot touch. Use the delta path
        (:func:`apply_delta_to_graph` + :func:`~repro.core.shards.\
refresh_sharded_index`), which rewrites only the dirty shard files.
    """
    affected: Set[int] = {int(v) for v in affected_nodes}
    if not affected:
        return 0
    if index.shards is not None:
        raise ConfigurationError(
            "invalidate_propagation requires the in-memory backend; this "
            "index serves from mapped shards - refresh them with "
            "repro.core.shards.refresh_sharded_index instead"
        )
    doomed = []
    for node, entry in index.backend.entries.items():
        if (
            node in affected
            or affected & set(entry.gamma)
            or affected & entry.marked
        ):
            doomed.append(node)
    for node in doomed:
        del index.backend.entries[node]
    return len(doomed)


def refresh_walk_index(engine: PITEngine) -> None:
    """Force the walk index (and everything derived from it) to rebuild."""
    engine._walk_index = None
    engine._summarizer = None
    engine._summaries = {}
