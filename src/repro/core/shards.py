"""Memory-mapped, sharded propagation-index storage (scale extension).

The paper's offline propagation index (``Γ(v)`` per node, §5.1) is the
system's largest artifact. The single-NPZ persistence in
:mod:`repro.core.persistence` round-trips the *whole* index through RAM,
which caps graph size at memory and makes cold start O(index size). This
module stores the same entries as a **sharded flat binary artifact**:

* entries are grouped by contiguous node range (``shard_nodes`` per
  shard) into independent segment files;
* each segment is a fixed-layout flat binary blob - a 64-byte header
  followed by CSR-style offset tables and the concatenated sorted
  ``sources``/``probabilities``/``marked`` arrays (the existing compact
  :class:`~repro.core.propagation.PropagationEntry` layout, which is
  already mmap-friendly);
* a checksummed JSON manifest (:mod:`repro._artifacts` shard machinery)
  records every segment's byte count and SHA-256 plus the build
  parameters, so corruption surfaces as
  :class:`~repro.exceptions.ArtifactCorruptedError` and an artifact can
  never silently be replayed against the wrong graph or ``θ``.

Reading is **zero-copy**: a segment is ``np.memmap``-ed once and every
entry is a typed view into the mapping - opening a million-node index
costs one manifest read, and resident memory is bounded by paging the
mapped segments through a byte-budgeted
:class:`~repro.core.serving.ByteLRUCache`. Mapped arrays are opened in
read-only mode, so an accidental write raises instead of corrupting the
artifact on disk.

Shard layout (version 1), all sections 8-byte aligned::

    bytes [0, 8)    magic  b"PITSHRD1"
    bytes [8, 64)   little-endian int64 x 7:
                    version, lo, hi, n_members, n_marked, 0, 0
    offsets         int64[(hi - lo) + 1]   Γ slice bounds per node
    marked_offsets  int64[(hi - lo) + 1]   Γ* slice bounds per node
    branches        int64[hi - lo]         branch counts per node
    sources         int64[n_members]       concatenated sorted Γ members
    probabilities   float64[n_members]     parallel Γ probabilities
    marked          int64[n_marked]        concatenated sorted Γ* members

Node ``v`` (``lo <= v < hi``) owns ``sources[offsets[v-lo]:
offsets[v-lo+1]]`` and the parallel probability slice; an empty slice is
a legitimate entry (a node no qualifying path reaches).
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from .. import _faults
from .._artifacts import (
    MANIFEST_NAME,
    ShardWriter,
    load_shard_manifest,
    verify_shard_file,
)
from .._utils import require_in_range
from ..exceptions import ArtifactCorruptedError, ConfigurationError
from ..graph import SocialGraph
from ..obs.registry import MetricsRegistry, get_registry
from .propagation import PropagationEntry, PropagationIndex
from .serving import ByteLRUCache

__all__ = [
    "SHARD_KIND",
    "SHARD_MAGIC",
    "SHARD_FORMAT_VERSION",
    "DEFAULT_SHARD_NODES",
    "DEFAULT_SHARD_CACHE_BYTES",
    "shard_filename",
    "pack_shard",
    "MmapShardBackend",
    "PropagationShardWriter",
    "save_sharded_index",
    "load_sharded_index",
]

PathLike = Union[str, Path]

#: Manifest ``kind`` tag of a sharded propagation index.
SHARD_KIND = "propagation-index-shards"

#: Leading magic of every shard segment file.
SHARD_MAGIC = b"PITSHRD1"

#: On-disk layout version of the shard segments.
SHARD_FORMAT_VERSION = 1

#: Nodes per shard segment when the caller does not choose.
DEFAULT_SHARD_NODES = 4096

#: Shard-paging byte budget when the caller does not choose (256 MiB).
DEFAULT_SHARD_CACHE_BYTES = 256 * 1024 * 1024

_HEADER = struct.Struct("<7q")
_HEADER_BYTES = 64


def shard_filename(lo: int, hi: int) -> str:
    """Canonical segment file name for node range ``[lo, hi)``."""
    return f"shard-{lo:010d}-{hi:010d}.bin"


# ---------------------------------------------------------------------------
# Packing (build side)
# ---------------------------------------------------------------------------


def pack_shard(
    lo: int, hi: int, entries: Mapping[int, PropagationEntry]
) -> bytes:
    """Serialize the entries of node range ``[lo, hi)`` to shard bytes.

    Nodes absent from *entries* are stored as empty slots (zero-length Γ
    slices). Entries are deterministic given the graph and build
    parameters, so identical entry sets pack to byte-identical shards -
    the property that lets an interrupted-and-resumed sharded build be
    compared digest-for-digest against an uninterrupted one.
    """
    count = hi - lo
    offsets = np.zeros(count + 1, dtype=np.int64)
    marked_offsets = np.zeros(count + 1, dtype=np.int64)
    branches = np.zeros(count, dtype=np.int64)
    source_parts: List[np.ndarray] = []
    probability_parts: List[np.ndarray] = []
    marked_parts: List[np.ndarray] = []
    for i, node in enumerate(range(lo, hi)):
        entry = entries.get(node)
        if entry is None:
            offsets[i + 1] = offsets[i]
            marked_offsets[i + 1] = marked_offsets[i]
            continue
        offsets[i + 1] = offsets[i] + entry.size
        marked_offsets[i + 1] = marked_offsets[i] + entry.marked_array.size
        branches[i] = entry.branches
        source_parts.append(entry.sources)
        probability_parts.append(entry.probabilities)
        marked_parts.append(entry.marked_array)
    empty_i = np.empty(0, dtype=np.int64)
    empty_f = np.empty(0, dtype=np.float64)
    sources = np.concatenate(source_parts or [empty_i])
    probabilities = np.concatenate(probability_parts or [empty_f])
    marked = np.concatenate(marked_parts or [empty_i])
    header = SHARD_MAGIC + _HEADER.pack(
        SHARD_FORMAT_VERSION, lo, hi, sources.size, marked.size, 0, 0
    )
    header = header.ljust(_HEADER_BYTES, b"\0")
    return b"".join((
        header,
        offsets.tobytes(),
        marked_offsets.tobytes(),
        branches.tobytes(),
        np.ascontiguousarray(sources, dtype=np.int64).tobytes(),
        np.ascontiguousarray(probabilities, dtype=np.float64).tobytes(),
        np.ascontiguousarray(marked, dtype=np.int64).tobytes(),
    ))


def _expected_nbytes(count: int, n_members: int, n_marked: int) -> int:
    return _HEADER_BYTES + 8 * (2 * (count + 1) + count + 2 * n_members + n_marked)


# ---------------------------------------------------------------------------
# Mapping (serve side)
# ---------------------------------------------------------------------------


class _MappedShard:
    """One memory-mapped shard segment with typed zero-copy views.

    Entry objects are memoized per shard, so the per-entry caches (the
    ``marked_pairs`` resolution the Expand step reuses) live exactly as
    long as the shard is resident in the paging cache and are dropped
    with it on eviction.
    """

    __slots__ = (
        "lo", "hi", "nbytes", "_buffer", "_offsets", "_marked_offsets",
        "_branches", "_sources", "_probabilities", "_marked", "_entries",
    )

    def __init__(self, path: Path, lo: int, hi: int,
                 n_members: int, n_marked: int, nbytes: int):
        self.lo = int(lo)
        self.hi = int(hi)
        self.nbytes = int(nbytes)
        count = self.hi - self.lo
        # mode="r" maps the file copy-on-read and marks every view
        # non-writeable: an accidental store raises ValueError instead of
        # corrupting the artifact.
        buffer = np.memmap(path, dtype=np.uint8, mode="r")
        self._buffer = buffer
        pos = _HEADER_BYTES

        def take(n_items: int, dtype) -> np.ndarray:
            nonlocal pos
            nbytes_ = 8 * n_items
            view = buffer[pos : pos + nbytes_].view(dtype)
            pos += nbytes_
            return view

        self._offsets = take(count + 1, np.int64)
        self._marked_offsets = take(count + 1, np.int64)
        self._branches = take(count, np.int64)
        self._sources = take(n_members, np.int64)
        self._probabilities = take(n_members, np.float64)
        self._marked = take(n_marked, np.int64)
        self._entries: Dict[int, PropagationEntry] = {}

    def entry(self, node: int) -> PropagationEntry:
        cached = self._entries.get(node)
        if cached is None:
            i = node - self.lo
            lo, hi = int(self._offsets[i]), int(self._offsets[i + 1])
            mlo = int(self._marked_offsets[i])
            mhi = int(self._marked_offsets[i + 1])
            cached = PropagationEntry.from_arrays(
                node,
                self._sources[lo:hi],
                self._probabilities[lo:hi],
                self._marked[mlo:mhi],
                int(self._branches[i]),
                mapped=True,
            )
            self._entries[node] = cached
        return cached


def _open_shard(
    directory: Path, record: Mapping[str, object], *, verify: bool = False
) -> _MappedShard:
    """Map one shard segment, validating its header against the manifest.

    The header bytes pass through the ``artifact.load_bytes`` fault hook
    so the corruption-injection harness exercises this path; ``verify``
    additionally re-reads the whole file and checks its SHA-256 digest.
    """
    what = "propagation shard"
    if verify:
        verify_shard_file(directory, record, what)
    path = directory / str(record["name"])
    header = read_shard_header(path)
    version, lo, hi, n_members, n_marked = header
    if version > SHARD_FORMAT_VERSION:
        raise ArtifactCorruptedError(
            path,
            reason=(
                f"shard format version {version} is newer than the "
                f"supported version {SHARD_FORMAT_VERSION}"
            ),
        )
    if lo != int(record["lo"]) or hi != int(record["hi"]):
        raise ArtifactCorruptedError(
            path,
            reason=(
                f"shard header covers nodes [{lo}, {hi}) but the manifest "
                f"records [{int(record['lo'])}, {int(record['hi'])})"
            ),
        )
    expected = _expected_nbytes(hi - lo, n_members, n_marked)
    actual = path.stat().st_size
    if actual != expected or actual != int(record["nbytes"]):
        raise ArtifactCorruptedError(
            path,
            reason=(
                f"truncated shard: {actual} bytes on disk, layout requires "
                f"{expected}, manifest records {int(record['nbytes'])}"
            ),
        )
    return _MappedShard(path, lo, hi, n_members, n_marked, actual)


def read_shard_header(path: Path) -> Tuple[int, int, int, int, int]:
    """``(version, lo, hi, n_members, n_marked)`` from a segment header."""
    from .._artifacts import read_artifact_bytes  # shares fault hooks

    try:
        with open(path, "rb") as handle:
            header = handle.read(_HEADER_BYTES)
    except FileNotFoundError:
        # Route through the shared reader for its error shape.
        read_artifact_bytes(path, "propagation shard")
        raise  # pragma: no cover - read_artifact_bytes always raises
    except OSError as exc:
        raise ArtifactCorruptedError(
            path, reason=f"unreadable shard ({exc})"
        ) from exc
    header = _faults.transform("artifact.load_bytes", header, path=path)
    if len(header) < _HEADER_BYTES or header[:8] != SHARD_MAGIC:
        raise ArtifactCorruptedError(
            path, reason="bad shard magic (not a propagation shard?)"
        )
    version, lo, hi, n_members, n_marked, _, _ = _HEADER.unpack(
        header[8 : 8 + _HEADER.size]
    )
    if hi <= lo or n_members < 0 or n_marked < 0:
        raise ArtifactCorruptedError(
            path,
            reason=(
                f"corrupt shard header (lo={lo}, hi={hi}, "
                f"n_members={n_members}, n_marked={n_marked})"
            ),
        )
    return int(version), int(lo), int(hi), int(n_members), int(n_marked)


class MmapShardBackend:
    """Bounded-memory entry store over a sharded on-disk index.

    Segments are mapped on demand and paged through a
    :class:`~repro.core.serving.ByteLRUCache` charged at each segment's
    file size, so the bytes the backend keeps *charged* never exceed
    ``cache_bytes`` regardless of index size. (A single segment larger
    than the whole budget is served unpaged: mapped per access and
    dropped, never cached.)

    Parameters
    ----------
    directory:
        A completed :meth:`PropagationIndex.build_sharded` /
        :func:`save_sharded_index` artifact directory.
    graph:
        The graph the index was built from; the manifest's recorded
        node/edge counts must match.
    cache_bytes:
        Paging budget for resident segments.
    verify:
        Re-read and SHA-256-verify every segment on first map (slow;
        integrity spot-checks and post-transfer validation).
    metrics:
        Registry receiving ``index.shard.*`` metrics (``None`` = process
        default).
    """

    def __init__(
        self,
        directory: PathLike,
        graph: SocialGraph,
        *,
        cache_bytes: int = DEFAULT_SHARD_CACHE_BYTES,
        verify: bool = False,
        metrics: Optional[MetricsRegistry] = None,
    ):
        require_in_range("cache_bytes", cache_bytes, 1)
        self._dir = Path(directory)
        manifest = load_shard_manifest(
            self._dir, kind=SHARD_KIND, what="sharded propagation index"
        )
        if not manifest["complete"]:
            raise ArtifactCorruptedError(
                self._dir / MANIFEST_NAME,
                reason=(
                    "incomplete sharded index (the build was interrupted; "
                    "rerun build_sharded on the same directory to finish it)"
                ),
            )
        meta = manifest["meta"]
        for key in ("n_nodes", "n_edges", "theta", "max_branches",
                    "strict", "shard_nodes"):
            if key not in meta:
                raise ArtifactCorruptedError(
                    self._dir / MANIFEST_NAME,
                    reason=f"manifest meta is missing {key!r}",
                )
        if (int(meta["n_nodes"]) != graph.n_nodes
                or int(meta["n_edges"]) != graph.n_edges):
            raise ConfigurationError(
                f"{self._dir}: sharded index was built for a graph with "
                f"{int(meta['n_nodes'])} nodes/{int(meta['n_edges'])} edges, "
                f"but the supplied graph has {graph.n_nodes} nodes/"
                f"{graph.n_edges} edges"
            )
        records = sorted(manifest["shards"], key=lambda r: int(r["lo"]))
        expected_lo = 0
        for record in records:
            if int(record["lo"]) != expected_lo:
                raise ArtifactCorruptedError(
                    self._dir / MANIFEST_NAME,
                    reason=(
                        f"shard coverage gap: expected a shard starting at "
                        f"node {expected_lo}, found {int(record['lo'])}"
                    ),
                )
            expected_lo = int(record["hi"])
        if expected_lo != graph.n_nodes:
            raise ArtifactCorruptedError(
                self._dir / MANIFEST_NAME,
                reason=(
                    f"shards cover nodes [0, {expected_lo}) but the graph "
                    f"has {graph.n_nodes} nodes"
                ),
            )
        self._graph = graph
        self._records = records
        self._shard_nodes = int(meta["shard_nodes"])
        self._theta = float(meta["theta"])
        self._max_branches = int(meta["max_branches"])
        self._strict = bool(meta["strict"])
        self._failed_nodes = tuple(
            int(n) for n in manifest.get("failed_nodes", ())
        )
        self._verify = bool(verify)
        self._cache: ByteLRUCache = ByteLRUCache(
            cache_bytes, name="index-shards"
        )
        self._metrics = metrics
        self._mapped_bytes = sum(int(r["nbytes"]) for r in records)

    def _registry(self) -> MetricsRegistry:
        metrics = self._metrics
        return metrics if metrics is not None else get_registry()

    # ------------------------------------------------------------------
    @property
    def directory(self) -> Path:
        """The artifact directory."""
        return self._dir

    @property
    def theta(self) -> float:
        """The ``θ`` the shards were built with."""
        return self._theta

    @property
    def max_branches(self) -> int:
        """The branch budget the shards were built with."""
        return self._max_branches

    @property
    def strict(self) -> bool:
        """The strictness flag the shards were built with."""
        return self._strict

    @property
    def shard_nodes(self) -> int:
        """Nodes per shard segment."""
        return self._shard_nodes

    @property
    def cache_bytes(self) -> int:
        """The paging budget this backend was opened with."""
        return int(self._cache.stats().max_bytes)

    @property
    def n_shards(self) -> int:
        """Number of shard segments."""
        return len(self._records)

    @property
    def n_entries(self) -> int:
        """Entries the shards cover (every node of the graph)."""
        return self._graph.n_nodes

    @property
    def failed_nodes(self) -> Tuple[int, ...]:
        """Nodes a keep-going build stored as empty slots after retries."""
        return self._failed_nodes

    def set_metrics(self, registry: Optional[MetricsRegistry]) -> None:
        """Route shard metrics to *registry* (None = process default)."""
        self._metrics = registry

    # ------------------------------------------------------------------
    def get(self, node: int) -> PropagationEntry:
        """The mapped entry of *node* (pages its shard in if needed)."""
        shard_id = node // self._shard_nodes
        shard = self._cache.get(shard_id)
        if shard is None:
            shard = _open_shard(
                self._dir, self._records[shard_id], verify=self._verify
            )
            self._cache.put(shard_id, shard, shard.nbytes)
            self._registry().inc("index.shard.loads")
        return shard.entry(node)

    def resident_bytes(self) -> int:
        """Mapped-segment bytes currently charged to the paging cache."""
        return self._cache.memory_bytes()

    def mapped_bytes(self) -> int:
        """Total on-disk bytes of all segments (virtual, not resident)."""
        return self._mapped_bytes

    def cache_stats(self):
        """:class:`~repro.core.diagnostics.CacheStats` of the paging cache."""
        return self._cache.stats()

    def publish_gauges(self, registry: MetricsRegistry) -> None:
        """Publish the ``index.shard.*`` point-in-time gauges."""
        stats = self._cache.stats()
        registry.set_gauge("index.shard.total", len(self._records))
        registry.set_gauge("index.shard.resident", stats.n_items)
        registry.set_gauge("index.shard.resident_bytes", stats.current_bytes)
        registry.set_gauge("index.shard.mapped_bytes", self._mapped_bytes)
        registry.set_gauge("index.shard.cache_bytes", stats.max_bytes)
        registry.set_gauge("index.shard.hits", stats.hits)
        registry.set_gauge("index.shard.misses", stats.misses)
        registry.set_gauge("index.shard.evictions", stats.evictions)


# ---------------------------------------------------------------------------
# Writer + module-level save/load
# ---------------------------------------------------------------------------


class PropagationShardWriter:
    """Streaming writer for a sharded propagation index.

    A thin propagation-specific wrapper over the generic
    :class:`repro._artifacts.ShardWriter`: it fixes the manifest kind and
    ``meta`` (graph signature + build parameters), names segments
    canonically, and packs entries with :func:`pack_shard`.
    """

    def __init__(
        self, directory: PathLike, index: PropagationIndex, shard_nodes: int
    ):
        require_in_range("shard_nodes", shard_nodes, 1)
        self._index = index
        self._shard_nodes = int(shard_nodes)
        self._writer = ShardWriter(directory, SHARD_KIND, {
            "n_nodes": index.graph.n_nodes,
            "n_edges": index.graph.n_edges,
            "theta": index.theta,
            "max_branches": index.max_branches,
            "strict": bool(index.strict),
            "shard_nodes": int(shard_nodes),
        })

    @property
    def directory(self) -> Path:
        """The artifact directory."""
        return self._writer.directory

    def resume(self) -> Dict[Tuple[int, int], dict]:
        """Verified ``(lo, hi) -> record`` map of already-written shards.

        Raises :class:`~repro.exceptions.ConfigurationError` when the
        directory holds shards built under different parameters, and
        :class:`~repro.exceptions.ArtifactCorruptedError` when a listed
        shard fails size/digest verification.
        """
        records = self._writer.resume("sharded propagation index")
        return {
            (int(r["lo"]), int(r["hi"])): r for r in records
        }

    def write_range(
        self, lo: int, hi: int, entries: Mapping[int, PropagationEntry]
    ) -> dict:
        """Pack and atomically publish the shard of nodes ``[lo, hi)``."""
        data = pack_shard(lo, hi, entries)
        n_members = sum(
            entries[n].size for n in range(lo, hi) if n in entries
        )
        n_marked = sum(
            entries[n].marked_array.size for n in range(lo, hi) if n in entries
        )
        return self._writer.write_shard(
            shard_filename(lo, hi), data,
            lo=int(lo), hi=int(hi),
            n_members=int(n_members), n_marked=int(n_marked),
        )

    def adopt(self, record: Mapping[str, object], *, verify: bool = True) -> dict:
        """Carry a clean shard's record into this writer's manifest.

        The delta-refresh path: a graph edit changes the manifest meta
        (``n_edges``), so :meth:`resume` refuses the old manifest - but
        shards untouched by the delta keep byte-identical files. Adopting
        re-verifies the file against the record (size + SHA-256) and
        lists it in the new manifest without rewriting it.
        """
        return self._writer.adopt_shard(record, verify=verify)

    def finalize(self, failed_nodes: Tuple[int, ...] = ()) -> dict:
        """Publish the completed manifest."""
        return self._writer.finalize(
            failed_nodes=sorted(int(n) for n in failed_nodes)
        )


def save_sharded_index(
    index: PropagationIndex,
    directory: PathLike,
    *,
    shard_nodes: int = DEFAULT_SHARD_NODES,
) -> Path:
    """Write a fully materialized in-memory index as a sharded artifact.

    The migration path from the legacy single-NPZ format: load the NPZ
    with :func:`~repro.core.persistence.load_propagation_index`, then
    save it sharded. Requires every node's entry to be cached - a shard
    slot cannot distinguish "never built" from "empty Γ", so persisting a
    partial index would silently change query results.
    """
    n_nodes = index.graph.n_nodes
    missing = n_nodes - sum(
        1 for node in index._entries if 0 <= node < n_nodes
    )
    if missing:
        raise ConfigurationError(
            f"cannot shard a partial index: {missing} of {n_nodes} entries "
            f"were never materialized (run build_all or build_sharded)"
        )
    writer = PropagationShardWriter(directory, index, shard_nodes)
    for lo in range(0, n_nodes, int(shard_nodes)):
        hi = min(lo + int(shard_nodes), n_nodes)
        writer.write_range(lo, hi, index._entries)
    writer.finalize()
    return writer.directory


def load_sharded_index(
    directory: PathLike,
    graph: SocialGraph,
    *,
    cache_bytes: int = DEFAULT_SHARD_CACHE_BYTES,
    verify: bool = False,
    metrics: Optional[MetricsRegistry] = None,
) -> PropagationIndex:
    """Open a sharded index as a :class:`PropagationIndex` (zero-copy).

    The returned index serves every entry from the mapped shards (paged
    under *cache_bytes*) and is bit-exact with the in-memory index the
    shards were built from; ``theta``/``max_branches``/``strict`` come
    from the manifest. Cold open reads only the manifest - no segment is
    touched until its first entry is requested.
    """
    backend = MmapShardBackend(
        directory, graph,
        cache_bytes=cache_bytes, verify=verify, metrics=metrics,
    )
    index = PropagationIndex(
        graph, backend.theta,
        max_branches=backend.max_branches,
        strict=backend.strict,
        metrics=metrics,
    )
    index.attach_shards(backend)
    return index


def refresh_sharded_index(
    backend: MmapShardBackend,
    graph: SocialGraph,
    affected,
    *,
    cache_bytes: Optional[int] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> PropagationIndex:
    """Rewrite only the dirty shards of a sharded index for an edited graph.

    The sharded arm of the delta engine (:mod:`repro.core.dynamics`):
    *affected* is the node set whose Γ can change (see
    :func:`~repro.core.dynamics.affected_nodes`), *graph* is the
    post-delta graph over the same node set. Shards containing an
    affected node are repacked - affected entries rebuilt against the
    new graph's CSR, unaffected entries copied zero-copy out of the old
    mapped segment - and atomically replaced in the same directory;
    clean shards are carried into the new manifest byte-untouched (the
    manifest must be rewritten regardless, because its ``meta`` records
    the edge count). Affected nodes drop off the ``failed_nodes`` list:
    their slots are rebuilt for real.

    Returns a fresh shard-served :class:`PropagationIndex` (same shape
    as :func:`load_sharded_index`) with
    ``{"shards_rewritten", "shards_carried", "entries_rebuilt",
    "entries_copied"}`` in ``last_refresh_stats``. The *old* backend's
    mapped segments keep serving their pre-delta bytes until dropped -
    discard it after the swap.

    The directory is momentarily incomplete while shards are replaced;
    a crash mid-refresh leaves a manifest that loaders refuse, and the
    recovery is a full ``build_sharded`` (see ``docs/dynamics.md``).
    """
    if graph.n_nodes != backend._graph.n_nodes:
        raise ConfigurationError(
            f"delta graphs must keep the node set: got {graph.n_nodes} "
            f"nodes, shards cover {backend._graph.n_nodes}"
        )
    affected = np.asarray(affected, dtype=np.int64)
    mask = np.zeros(graph.n_nodes, dtype=bool)
    mask[affected] = True
    builder = PropagationIndex(
        graph, backend.theta,
        max_branches=backend.max_branches,
        strict=backend.strict,
        metrics=metrics,
    )
    writer = PropagationShardWriter(
        backend.directory, builder, backend.shard_nodes
    )
    dirty = set((affected // backend.shard_nodes).tolist())
    failed = set(backend.failed_nodes)
    rewritten = carried = rebuilt = copied = 0
    for shard_id, record in enumerate(backend._records):
        lo, hi = int(record["lo"]), int(record["hi"])
        if shard_id not in dirty:
            writer.adopt(record)
            carried += 1
            continue
        entries: Dict[int, PropagationEntry] = {}
        for node in range(lo, hi):
            if mask[node]:
                entries[node] = builder.build_entry(node)
                rebuilt += 1
            elif node not in failed:
                entries[node] = backend.get(node)
                copied += 1
        writer.write_range(lo, hi, entries)
        rewritten += 1
    writer.finalize(
        failed_nodes=tuple(n for n in failed if not mask[n])
    )
    registry = metrics if metrics is not None else get_registry()
    registry.inc("dynamics.shards_rewritten", rewritten)
    registry.inc("dynamics.shards_carried", carried)
    registry.inc("dynamics.entries_rebuilt", rebuilt)
    registry.inc("dynamics.entries_copied", copied)
    index = load_sharded_index(
        backend.directory, graph,
        cache_bytes=(
            backend.cache_bytes if cache_bytes is None else cache_bytes
        ),
        metrics=metrics,
    )
    index.last_refresh_stats = {
        "shards_rewritten": rewritten,
        "shards_carried": carried,
        "entries_rebuilt": rebuilt,
        "entries_copied": copied,
    }
    return index
