"""End-to-end PIT-Search engine facade (S24).

Ties the whole stack together the way the paper's Algorithms 5 and 9 do:

* **offline** - build the walk index (Algorithm 6) once per graph, derive a
  topic summary per topic with the configured summarizer (RCL-A or LRW-A),
  and materialize propagation entries on demand;
* **online** - answer ``search(user, query, k)`` via Algorithm 10.

Summaries and propagation entries are cached, so repeated queries pay only
the online cost - exactly the paper's amortization story.

:meth:`PITEngine.build_summaries` runs the offline summarization stage the
way :meth:`~repro.core.propagation.PropagationIndex.build_all` runs the
index build: topics shard across a ``ProcessPoolExecutor`` when
``workers > 1`` (every topic's summary is independent, and the RCL-A
randomness is derived per topic, so parallel output is byte-identical to
serial), completed summaries flush periodically to a checksummed
checkpoint artifact, crashed workers retry on fresh pools with bounded
backoff, and a later call resumes from the checkpoint.
"""

from __future__ import annotations

import os
import time
import warnings
from concurrent.futures import ProcessPoolExecutor, as_completed
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from .. import _faults
from .._utils import (
    SeedLike,
    coerce_rng,
    require_in_range,
    require_non_negative,
)
from ..exceptions import BuildFailedError, ConfigurationError, ReproError
from ..graph import SocialGraph
from ..obs.registry import MetricsRegistry, MetricsSnapshot, get_registry
from ..obs.tracing import trace
from ..topics import KeywordQuery, TopicIndex
from ..walks import WalkIndex
from .lrw import LRWSummarizer
from .propagation import PropagationIndex
from .rcl import RCLSummarizer
from .search import PersonalizedSearcher, SearchResult, SearchStats
from .summarization import Summarizer, TopicSummary

__all__ = ["PITEngine"]

_SUMMARIZER_NAMES = ("lrw", "rcl")


# ---------------------------------------------------------------------------
# Process-pool plumbing for build_summaries(workers > 1). The initializer
# ships the fully configured summarizer (graph, topic index, walk index) to
# each worker once; chunks return plain (topic_id, weights-dict) pairs so
# nothing engine-shaped is pickled per result.
# ---------------------------------------------------------------------------

_WORKER_SUMMARIZER: Optional[Summarizer] = None


def _summaries_worker_init(
    summarizer: Summarizer,
    faults: Optional[Dict[str, object]] = None,
) -> None:
    global _WORKER_SUMMARIZER
    if faults is not None:
        # Fault hooks registered in the parent travel through the pool
        # initializer so injected crashes fire inside worker processes
        # regardless of the multiprocessing start method.
        _faults.install(faults)
    _WORKER_SUMMARIZER = summarizer


def _summaries_worker_chunk(
    topics: Sequence[int], chunk_id: int = 0, attempt: int = 0
) -> List[Tuple[int, Dict[int, float]]]:
    summarizer = _WORKER_SUMMARIZER
    assert summarizer is not None, "worker pool used before initialization"
    _faults.inject(
        "summarize.worker_chunk",
        chunk=chunk_id,
        attempt=attempt,
        topics=tuple(topics),
    )
    return [
        (int(topic), dict(summarizer.summarize(int(topic)).weights))
        for topic in topics
    ]


def _backoff(attempt: int, retry_backoff: float) -> None:
    if retry_backoff > 0:
        time.sleep(min(retry_backoff * (2 ** (attempt - 1)), 30.0))


class _SummaryCheckpointWriter:
    """Periodic atomic flushes of the engine's cached summaries.

    The checkpoint file is an ordinary summaries artifact (checksummed,
    atomically replaced, graph-signed), so a partial checkpoint is always
    loadable and the final checkpoint of a completed build doubles as the
    finished artifact.
    """

    def __init__(
        self,
        engine: "PITEngine",
        path,
        every: int,
        registry: Optional[MetricsRegistry] = None,
    ):
        self._engine = engine
        self._path = None if path is None else Path(path)
        self._every = int(every)
        self._pending = 0
        self._registry = registry

    @property
    def enabled(self) -> bool:
        return self._path is not None

    def note_built(self, count: int = 1) -> None:
        """Record *count* newly built summaries, flushing on the cadence."""
        if self._path is None:
            return
        self._pending += count
        if self._every > 0 and self._pending >= self._every:
            self.flush()

    def flush(self) -> None:
        """Persist the engine's cached summaries if any are unflushed."""
        if self._path is None or self._pending == 0:
            return
        from .persistence import save_summaries

        registry = self._registry
        with trace("summarize.checkpoint_flush", registry=registry):
            save_summaries(
                self._engine._summaries, self._engine.graph, self._path
            )
        if registry is not None:
            registry.inc("summarize.checkpoint_flushes")
        self._pending = 0


class PITEngine:
    """One-stop PIT-Search over a graph + topic index.

    Parameters
    ----------
    graph / topic_index:
        The social network and its topic space.
    summarizer:
        ``"lrw"`` (default), ``"rcl"``, or a pre-built
        :class:`~repro.core.summarization.Summarizer` instance.
    theta:
        Propagation-index path-probability threshold ``θ``.
    walk_length / samples_per_node:
        ``L`` and ``R`` of the walk index (shared by both summarizers).
    rep_fraction:
        ``μ`` - representatives per topic as a fraction of ``|V_t|``.
    sample_rate:
        RCL-A's ``|V'|/|V|`` sampling rate (ignored for LRW-A).
    max_expand_rounds:
        Online Expand recursion bound.
    entry_cache_bytes / summary_cache_bytes:
        When set, the online searcher keeps lazily built propagation
        entries / summary array forms in bounded byte-accounted LRU caches
        of these sizes instead of unbounded per-index caches (see
        :mod:`repro.core.serving`). ``None`` (default) keeps the original
        unbounded behaviour.
    seed:
        Seed or generator for all stochastic stages.
    metrics:
        Registry receiving offline-build, summarization, and per-search
        metrics from every engine-owned component. ``None`` (default)
        uses the process-wide registry;
        :func:`~repro.obs.registry.null_registry` disables recording.

    Examples
    --------
    >>> from repro.datasets import data_2k
    >>> from repro.core.engine import PITEngine
    >>> bundle = data_2k(seed=7, with_corpus=False)
    >>> engine = PITEngine.from_dataset(bundle, summarizer="lrw", seed=7)
    >>> results = engine.search(user=3, query="phone", k=3)
    """

    def __init__(
        self,
        graph: SocialGraph,
        topic_index: TopicIndex,
        *,
        summarizer: Union[str, Summarizer] = "lrw",
        theta: float = 0.002,
        walk_length: int = 5,
        samples_per_node: int = 25,
        rep_fraction: float = 0.1,
        sample_rate: float = 0.05,
        max_expand_rounds: int = 8,
        entry_cache_bytes: Optional[int] = None,
        summary_cache_bytes: Optional[int] = None,
        seed: SeedLike = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if graph.n_nodes != topic_index.n_nodes:
            raise ConfigurationError(
                f"graph has {graph.n_nodes} nodes but topic index covers "
                f"{topic_index.n_nodes}"
            )
        self._graph = graph
        self._topic_index = topic_index
        self._rng = coerce_rng(seed)
        self._walk_length = int(walk_length)
        self._samples = int(samples_per_node)
        self._rep_fraction = float(rep_fraction)
        self._sample_rate = float(sample_rate)
        self._walk_index: Optional[WalkIndex] = None
        self._summarizer_spec = summarizer
        self._summarizer: Optional[Summarizer] = None
        self._summaries: Dict[int, TopicSummary] = {}
        #: Stats of the most recent :meth:`build_summaries` call.
        self.last_summary_build_stats = None
        self._metrics = metrics
        self.propagation_index = PropagationIndex(graph, theta, metrics=metrics)
        self._searcher = PersonalizedSearcher(
            topic_index,
            self.summary,
            self.propagation_index,
            max_expand_rounds=max_expand_rounds,
            entry_cache_bytes=entry_cache_bytes,
            summary_cache_bytes=summary_cache_bytes,
            metrics=metrics,
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_dataset(cls, bundle, **kwargs) -> "PITEngine":
        """Build an engine from a :class:`~repro.datasets.DatasetBundle`."""
        return cls(bundle.graph, bundle.topic_index, **kwargs)

    @property
    def graph(self) -> SocialGraph:
        """The social graph."""
        return self._graph

    @property
    def topic_index(self) -> TopicIndex:
        """The topic space."""
        return self._topic_index

    @property
    def walk_index(self) -> WalkIndex:
        """The shared Algorithm 6 walk index (built on first access)."""
        if self._walk_index is None:
            self._walk_index = WalkIndex.built(
                self._graph,
                self._walk_length,
                self._samples,
                seed=self._rng,
            )
        return self._walk_index

    @property
    def summarizer(self) -> Summarizer:
        """The configured offline summarizer (built on first access)."""
        if self._summarizer is None:
            self._summarizer = self._make_summarizer(self._summarizer_spec)
        return self._summarizer

    def _make_summarizer(self, spec: Union[str, Summarizer]) -> Summarizer:
        if isinstance(spec, Summarizer):
            return spec
        if spec == "lrw":
            return LRWSummarizer(
                self._graph,
                self._topic_index,
                self.walk_index,
                rep_fraction=self._rep_fraction,
                metrics=self._metrics,
            )
        if spec == "rcl":
            return RCLSummarizer(
                self._graph,
                self._topic_index,
                max_hops=self._walk_length,
                sample_rate=self._sample_rate,
                rep_fraction=self._rep_fraction,
                walk_index=self.walk_index,
                seed=self._rng,
                metrics=self._metrics,
            )
        raise ConfigurationError(
            f"unknown summarizer {spec!r}; choose from {_SUMMARIZER_NAMES} "
            "or pass a Summarizer instance"
        )

    # ------------------------------------------------------------------
    def summary(self, topic_id: int) -> TopicSummary:
        """Cached topic summary (offline stage, lazily per topic)."""
        topic_id = self._topic_index.resolve(topic_id)
        cached = self._summaries.get(topic_id)
        if cached is None:
            cached = self.summarizer.summarize(topic_id)
            self._summaries[topic_id] = cached
        return cached

    def use_propagation_index(self, index: PropagationIndex) -> "PITEngine":
        """Swap in a pre-built propagation index (e.g. loaded from disk).

        The index must cover this engine's graph; entries it already holds
        are served as-is and any missing ones still build lazily.
        """
        if (
            index.graph.n_nodes != self._graph.n_nodes
            or index.graph.n_edges != self._graph.n_edges
        ):
            raise ConfigurationError(
                f"propagation index covers a graph with "
                f"{index.graph.n_nodes} nodes/{index.graph.n_edges} edges, "
                f"but the engine's graph has {self._graph.n_nodes} nodes/"
                f"{self._graph.n_edges} edges"
            )
        self.propagation_index = index
        self._searcher.set_propagation_index(index)
        if self._metrics is not None:
            index.set_metrics(self._metrics)
        return self

    def replace_topic_index(
        self,
        new_index: TopicIndex,
        kept_summaries: Optional[Dict[int, TopicSummary]] = None,
    ) -> "PITEngine":
        """Swap in a new topic space, keeping the given summaries.

        The public seam for dynamic maintenance
        (:func:`~repro.core.dynamics.apply_topic_update`): installs
        *new_index*, replaces the summary cache with *kept_summaries*
        (already re-keyed to the new index's topic ids; every other
        summary rebuilds lazily), drops the bound summarizer (it holds
        the old index), and resets the searcher's topic-derived caches.
        """
        if new_index.n_nodes != self._graph.n_nodes:
            raise ConfigurationError(
                f"topic index covers {new_index.n_nodes} nodes but the "
                f"engine's graph has {self._graph.n_nodes}"
            )
        kept = dict(kept_summaries) if kept_summaries else {}
        for topic_id, summary in kept.items():
            if summary.topic_id != topic_id:
                raise ConfigurationError(
                    f"kept summary keyed {topic_id} carries "
                    f"topic_id={summary.topic_id}; re-key it first"
                )
        self._topic_index = new_index
        self._summaries = kept
        self._summarizer = None  # bound to the old index; rebuild lazily
        # Also drops compiled query plans and cached summary arrays - both
        # are keyed by (possibly re-numbered) topic ids of the old index.
        self._searcher.set_topic_index(new_index)
        return self

    def replace_graph(
        self,
        new_graph: SocialGraph,
        new_index: PropagationIndex,
        *,
        kept_summaries: Optional[Dict[int, TopicSummary]] = None,
    ) -> "PITEngine":
        """Swap in an edited graph with its partially rebuilt index.

        The engine-level landing point of a
        :class:`~repro.core.dynamics.GraphDelta`: installs the new graph
        and propagation index, keeps only *kept_summaries* (topics whose
        member and representative sets missed the affected region; the
        rest rebuild lazily against the new graph), and drops the walk
        index and bound summarizer, which sample the old graph.
        """
        if new_graph.n_nodes != self._graph.n_nodes:
            raise ConfigurationError(
                f"delta graphs must keep the node set: got "
                f"{new_graph.n_nodes} nodes, engine has {self._graph.n_nodes}"
            )
        if new_index.graph is not new_graph:
            raise ConfigurationError(
                "the propagation index must be built over the new graph"
            )
        self._graph = new_graph
        self._walk_index = None
        self._summarizer = None
        self._summaries = (
            dict(kept_summaries) if kept_summaries is not None else {}
        )
        self.propagation_index = new_index
        self._searcher.set_propagation_index(new_index)
        self._searcher.invalidate_query_caches()
        if self._metrics is not None:
            new_index.set_metrics(self._metrics)
        return self

    def build(self, topics: Optional[Iterable[Union[int, str]]] = None) -> "PITEngine":
        """Run the offline stage eagerly.

        Builds the walk index and the summaries of *topics* (default: every
        topic in the space). Propagation entries stay lazy - they are
        per-user and the paper also materializes them independently.
        """
        if topics is None:
            topics = range(self._topic_index.n_topics)
        for topic in topics:
            self.summary(self._topic_index.resolve(topic))
        return self

    def build_summaries(
        self,
        topics: Optional[Iterable[Union[int, str]]] = None,
        *,
        workers: Optional[int] = 1,
        checkpoint=None,
        checkpoint_every: int = 16,
        resume: bool = True,
        max_retries: int = 2,
        retry_backoff: float = 0.5,
        strict: bool = True,
    ) -> "PITEngine":
        """Build the summaries of *topics* with checkpoints and retries.

        The fault-tolerant, parallel counterpart of :meth:`build` -
        engineered like
        :meth:`~repro.core.propagation.PropagationIndex.build_all`.

        Parameters
        ----------
        topics:
            Topics to summarize (ids or labels); default every topic.
        workers:
            Worker processes to shard topics across. ``1`` (default)
            builds serially in-process; ``None`` uses every available
            CPU. Parallel results are byte-identical to serial ones:
            LRW-A is deterministic given the shared walk index, and
            RCL-A derives its randomness per topic from
            ``(entropy, topic_id)``, independent of build order.
        checkpoint:
            Path of a checkpoint artifact. When set, completed summaries
            are flushed there every ``checkpoint_every`` topics
            (atomically, checksummed, graph-signed), on interruption, and
            when the build finishes - so a crashed build loses at most
            one flush interval of work.
        checkpoint_every:
            Topics between periodic checkpoint flushes; ``0`` flushes
            only at interruption/completion.
        resume:
            Load an existing checkpoint before building (default). The
            checkpoint must match this engine's graph signature.
        max_retries:
            Fresh-process retry rounds for chunks whose worker crashed
            or raised an unexpected error. Deterministic library errors
            (:class:`~repro.exceptions.ReproError`) are never retried.
        retry_backoff:
            Base of the bounded exponential backoff (seconds) slept
            before each retry round: ``retry_backoff * 2**(round-1)``,
            capped at 30s.
        strict:
            What to do with topics that still fail after ``max_retries``:
            ``True`` (default) raises
            :class:`~repro.exceptions.BuildFailedError` (with the partial
            summaries attached as ``partial_summaries`` and the
            checkpoint flushed); ``False`` records them on the build
            stats and continues.

        Records a :class:`~repro.core.diagnostics.SummaryBuildStats` on
        :attr:`last_summary_build_stats` - a view over the metrics
        registry delta, like the propagation build's stats.
        """
        from .diagnostics import SummaryBuildStats
        from .persistence import load_summaries

        require_in_range("checkpoint_every", checkpoint_every, 0)
        require_in_range("max_retries", max_retries, 0)
        require_non_negative("retry_backoff", retry_backoff)
        if workers is None:
            workers = getattr(os, "process_cpu_count", os.cpu_count)() or 1
        workers = int(workers)
        if topics is None:
            topic_ids = list(range(self._topic_index.n_topics))
        else:
            topic_ids = [self._topic_index.resolve(t) for t in topics]
        registry = (
            self._metrics if self._metrics is not None else get_registry()
        )
        if not registry.enabled:
            # Stats must exist even with metrics disabled: account into a
            # private throwaway registry instead of forking a second
            # bookkeeping path.
            registry = MetricsRegistry()
        before = registry.snapshot()
        failed: List[int] = []
        with trace("summarize.build_all", registry=registry, workers=workers):
            n_resumed = 0
            if checkpoint is not None and resume and Path(checkpoint).exists():
                with trace("summarize.resume", registry=registry):
                    loaded = load_summaries(checkpoint, self._graph)
                for topic_id, summary in loaded.items():
                    if topic_id not in self._summaries:
                        self._summaries[topic_id] = summary
                        n_resumed += 1
            if n_resumed:
                registry.inc("summarize.topics_resumed", n_resumed)
            missing = [t for t in topic_ids if t not in self._summaries]
            writer = _SummaryCheckpointWriter(
                self, checkpoint, checkpoint_every, registry
            )
            try:
                if workers <= 1 or len(missing) <= 1:
                    workers = 1
                    with trace("summarize.build_serial", registry=registry):
                        failed = self._build_summaries_serial(
                            missing, max_retries, retry_backoff, writer,
                            registry,
                        )
                else:
                    workers = min(workers, len(missing))
                    with trace("summarize.build_parallel", registry=registry):
                        failed = self._build_summaries_parallel(
                            missing, workers, max_retries, retry_backoff,
                            writer, registry,
                        )
            finally:
                # One flush covers every exit: completion, a ReproError
                # raise, and KeyboardInterrupt/SystemExit mid-build.
                # Summaries built before the exit are on disk for resume.
                writer.flush()
        if failed:
            registry.inc("summarize.topics_failed", len(failed))
        delta = registry.snapshot().delta(before)
        self.last_summary_build_stats = SummaryBuildStats.from_metrics(
            delta,
            n_summaries=len(self._summaries),
            workers=workers,
            failed_topics=tuple(sorted(set(failed))),
            n_resumed=n_resumed,
        )
        if failed:
            if strict:
                error = BuildFailedError(
                    sorted(set(failed)), self.last_summary_build_stats.n_built
                )
                error.partial_summaries = dict(self._summaries)
                raise error
            warnings.warn(
                f"{len(failed)} topic summaries failed to build after "
                f"{max_retries} retries and were skipped "
                f"(see last_summary_build_stats.failed_topics)",
                RuntimeWarning,
                stacklevel=2,
            )
        return self

    def _build_summaries_serial(
        self,
        missing: List[int],
        max_retries: int,
        retry_backoff: float,
        writer: _SummaryCheckpointWriter,
        registry: MetricsRegistry,
    ) -> List[int]:
        """In-process build with per-topic retries; returns failed topics."""
        failed: List[int] = []
        summarizer = self.summarizer
        for topic_id in missing:
            attempt = 0
            while True:
                try:
                    _faults.inject(
                        "summarize.build_topic", topic=topic_id, attempt=attempt
                    )
                    summary = summarizer.summarize(topic_id)
                except ReproError:
                    raise  # deterministic (e.g. empty topic) - no retry
                except Exception:
                    attempt += 1
                    if attempt > max_retries:
                        failed.append(topic_id)
                        break
                    registry.inc("summarize.topic_retries")
                    _backoff(attempt, retry_backoff)
                else:
                    self._summaries[topic_id] = summary
                    registry.inc("summarize.topics_built")
                    writer.note_built()
                    break
        return failed

    def _build_summaries_parallel(
        self,
        missing: List[int],
        workers: int,
        max_retries: int,
        retry_backoff: float,
        writer: _SummaryCheckpointWriter,
        registry: MetricsRegistry,
    ) -> List[int]:
        """Sharded build with fresh-pool chunk retries; returns failures.

        Small contiguous chunks keep workers load-balanced when topic
        sizes are skewed. A crashed worker breaks its whole pool, so each
        retry round runs the still-failing chunks on a freshly spawned
        pool; chunks that completed before the crash are kept and never
        rebuilt.
        """
        summarizer = self.summarizer  # also forces the walk index build
        chunk_size = max(1, len(missing) // (workers * 4))
        pending = [
            (i, missing[i * chunk_size : (i + 1) * chunk_size])
            for i in range((len(missing) + chunk_size - 1) // chunk_size)
        ]
        # The summarizer ships through the pool initializer; detach its
        # metrics registry first (workers record into their own process
        # default, the parent accounts results as they return).
        saved_metrics = getattr(summarizer, "_metrics", None)
        if hasattr(summarizer, "set_metrics"):
            summarizer.set_metrics(None)
        try:
            for attempt in range(max_retries + 1):
                if attempt:
                    _backoff(attempt, retry_backoff)
                still_failing: List[Tuple[int, List[int]]] = []
                with ProcessPoolExecutor(
                    max_workers=min(workers, len(pending)),
                    initializer=_summaries_worker_init,
                    initargs=(summarizer, _faults.snapshot()),
                ) as pool:
                    futures = {
                        pool.submit(
                            _summaries_worker_chunk, chunk, chunk_id, attempt
                        ): (chunk_id, chunk)
                        for chunk_id, chunk in pending
                    }
                    for future in as_completed(futures):
                        chunk_id, chunk = futures[future]
                        try:
                            results = future.result()
                        except ReproError:
                            raise  # deterministic - propagate immediately
                        except Exception:
                            # Worker crash (BrokenProcessPool fails every
                            # in-flight chunk of the round) or an
                            # unexpected in-worker error: retry fresh.
                            still_failing.append((chunk_id, chunk))
                        else:
                            for topic_id, weights in results:
                                self._summaries[topic_id] = TopicSummary(
                                    topic_id, weights
                                )
                            registry.inc(
                                "summarize.topics_built", len(results)
                            )
                            writer.note_built(len(results))
                if not still_failing:
                    pending = []
                    break
                if attempt < max_retries:
                    registry.inc("summarize.chunk_retries", len(still_failing))
                pending = sorted(still_failing)
        finally:
            if hasattr(summarizer, "set_metrics"):
                summarizer.set_metrics(saved_metrics)
        return [topic for _, chunk in pending for topic in chunk]

    @property
    def n_summaries(self) -> int:
        """Number of topic summaries built so far."""
        return len(self._summaries)

    @property
    def summaries(self) -> Dict[int, TopicSummary]:
        """The topic summaries built so far (a copy, keyed by topic id).

        Pair with :func:`~repro.core.persistence.save_summaries` /
        :func:`~repro.core.persistence.load_summaries` to persist a
        finished :meth:`build_summaries` run as its own artifact.
        """
        return dict(self._summaries)

    # ------------------------------------------------------------------
    def search(
        self,
        user: int,
        query: Union[str, KeywordQuery],
        k: int = 10,
        *,
        with_stats: bool = False,
    ):
        """Top-k personalized influential topics for *user* (Algorithm 10).

        Returns the ranked :class:`~repro.core.search.SearchResult` list,
        or ``(results, stats)`` when *with_stats* is true.
        """
        results, stats = self._searcher.search(user, query, k)
        if with_stats:
            return results, stats
        return results

    def search_batch(
        self,
        requests: Iterable[Tuple[int, Union[str, KeywordQuery]]],
        k: int = 10,
        *,
        with_stats: bool = False,
    ):
        """Answer many ``(user, query)`` requests in one batched call.

        Delegates to
        :meth:`~repro.core.search.PersonalizedSearcher.search_many`:
        requests sharing a keyword query are grouped so topic resolution
        and summary arrays are paid once per distinct query. Returns a
        list aligned with the input order - each element the ranked
        results, or ``(results, stats)`` when *with_stats* is true.
        """
        outcomes = self._searcher.search_many(requests, k)
        if with_stats:
            return outcomes
        return [results for results, _ in outcomes]

    def cache_stats(self):
        """Snapshots of the searcher's bounded serving caches.

        A tuple of :class:`~repro.core.diagnostics.CacheStats`, empty when
        the engine was built without cache budgets.
        """
        return self._searcher.cache_stats()

    def set_metrics(self, registry: Optional[MetricsRegistry]) -> "PITEngine":
        """Route every engine-owned component's metrics to *registry*.

        ``None`` restores the process-wide default; a
        :class:`~repro.obs.registry.NullRegistry` disables recording
        (the benchmark's overhead baseline).
        """
        self._metrics = registry
        self.propagation_index.set_metrics(registry)
        self._searcher.set_metrics(registry)
        if self._summarizer is not None and hasattr(
            self._summarizer, "set_metrics"
        ):
            self._summarizer.set_metrics(registry)
        return self

    def metrics_snapshot(self) -> MetricsSnapshot:
        """A coherent snapshot of the engine's metrics registry.

        Publishes the point-in-time gauges first - cache hit ratios and
        occupancy, propagation-index size, summary count - then snapshots.
        Gauges are published here (snapshot time) rather than per search,
        keeping the serving hot path to counter adds only.
        """
        from .serve_facade import publish_engine_gauges

        registry = (
            self._metrics if self._metrics is not None else get_registry()
        )
        publish_engine_gauges(
            registry,
            searcher=self._searcher,
            propagation_index=self.propagation_index,
            n_summaries=self.n_summaries,
            memory_bytes=self.memory_bytes(),
        )
        return registry.snapshot()

    def memory_bytes(self) -> int:
        """Approximate resident size of all engine-owned indexes.

        Covers the propagation index, the walk index (when built), every
        cached topic summary (including its frozen array form, via
        :meth:`~repro.core.summarization.TopicSummary.memory_bytes`), and
        the online searcher's bounded serving caches and compiled query
        plans. A memory-mapped shard backend is charged only at the bytes
        its paging cache currently holds resident - the full on-disk
        footprint is reported separately by the
        ``propagation.index_mapped_bytes`` gauge.
        """
        total = self.propagation_index.memory_bytes()
        if self._walk_index is not None and self._walk_index.is_built:
            total += self._walk_index.memory_bytes()
        total += sum(s.memory_bytes() for s in self._summaries.values())
        total += self._searcher.cache_memory_bytes()
        summary_stats = self._searcher.summary_cache_stats()
        if summary_stats is not None:
            # The summary-array LRU aliases array forms already charged
            # via TopicSummary.memory_bytes(); back out the double count.
            total -= summary_stats.current_bytes
        return total
