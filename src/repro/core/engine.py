"""End-to-end PIT-Search engine facade (S24).

Ties the whole stack together the way the paper's Algorithms 5 and 9 do:

* **offline** - build the walk index (Algorithm 6) once per graph, derive a
  topic summary per topic with the configured summarizer (RCL-A or LRW-A),
  and materialize propagation entries on demand;
* **online** - answer ``search(user, query, k)`` via Algorithm 10.

Summaries and propagation entries are cached, so repeated queries pay only
the online cost - exactly the paper's amortization story.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple, Union

from .._utils import SeedLike, coerce_rng
from ..exceptions import ConfigurationError
from ..graph import SocialGraph
from ..obs.registry import MetricsRegistry, MetricsSnapshot, get_registry
from ..topics import KeywordQuery, TopicIndex
from ..walks import WalkIndex
from .lrw import LRWSummarizer
from .propagation import PropagationIndex
from .rcl import RCLSummarizer
from .search import PersonalizedSearcher, SearchResult, SearchStats
from .summarization import Summarizer, TopicSummary

__all__ = ["PITEngine"]

_SUMMARIZER_NAMES = ("lrw", "rcl")


class PITEngine:
    """One-stop PIT-Search over a graph + topic index.

    Parameters
    ----------
    graph / topic_index:
        The social network and its topic space.
    summarizer:
        ``"lrw"`` (default), ``"rcl"``, or a pre-built
        :class:`~repro.core.summarization.Summarizer` instance.
    theta:
        Propagation-index path-probability threshold ``θ``.
    walk_length / samples_per_node:
        ``L`` and ``R`` of the walk index (shared by both summarizers).
    rep_fraction:
        ``μ`` - representatives per topic as a fraction of ``|V_t|``.
    sample_rate:
        RCL-A's ``|V'|/|V|`` sampling rate (ignored for LRW-A).
    max_expand_rounds:
        Online Expand recursion bound.
    entry_cache_bytes / summary_cache_bytes:
        When set, the online searcher keeps lazily built propagation
        entries / summary array forms in bounded byte-accounted LRU caches
        of these sizes instead of unbounded per-index caches (see
        :mod:`repro.core.serving`). ``None`` (default) keeps the original
        unbounded behaviour.
    seed:
        Seed or generator for all stochastic stages.
    metrics:
        Registry receiving offline-build, summarization, and per-search
        metrics from every engine-owned component. ``None`` (default)
        uses the process-wide registry;
        :func:`~repro.obs.registry.null_registry` disables recording.

    Examples
    --------
    >>> from repro.datasets import data_2k
    >>> from repro.core.engine import PITEngine
    >>> bundle = data_2k(seed=7, with_corpus=False)
    >>> engine = PITEngine.from_dataset(bundle, summarizer="lrw", seed=7)
    >>> results = engine.search(user=3, query="phone", k=3)
    """

    def __init__(
        self,
        graph: SocialGraph,
        topic_index: TopicIndex,
        *,
        summarizer: Union[str, Summarizer] = "lrw",
        theta: float = 0.002,
        walk_length: int = 5,
        samples_per_node: int = 25,
        rep_fraction: float = 0.1,
        sample_rate: float = 0.05,
        max_expand_rounds: int = 8,
        entry_cache_bytes: Optional[int] = None,
        summary_cache_bytes: Optional[int] = None,
        seed: SeedLike = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if graph.n_nodes != topic_index.n_nodes:
            raise ConfigurationError(
                f"graph has {graph.n_nodes} nodes but topic index covers "
                f"{topic_index.n_nodes}"
            )
        self._graph = graph
        self._topic_index = topic_index
        self._rng = coerce_rng(seed)
        self._walk_length = int(walk_length)
        self._samples = int(samples_per_node)
        self._rep_fraction = float(rep_fraction)
        self._sample_rate = float(sample_rate)
        self._walk_index: Optional[WalkIndex] = None
        self._summarizer_spec = summarizer
        self._summarizer: Optional[Summarizer] = None
        self._summaries: Dict[int, TopicSummary] = {}
        self._metrics = metrics
        self.propagation_index = PropagationIndex(graph, theta, metrics=metrics)
        self._searcher = PersonalizedSearcher(
            topic_index,
            self.summary,
            self.propagation_index,
            max_expand_rounds=max_expand_rounds,
            entry_cache_bytes=entry_cache_bytes,
            summary_cache_bytes=summary_cache_bytes,
            metrics=metrics,
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_dataset(cls, bundle, **kwargs) -> "PITEngine":
        """Build an engine from a :class:`~repro.datasets.DatasetBundle`."""
        return cls(bundle.graph, bundle.topic_index, **kwargs)

    @property
    def graph(self) -> SocialGraph:
        """The social graph."""
        return self._graph

    @property
    def topic_index(self) -> TopicIndex:
        """The topic space."""
        return self._topic_index

    @property
    def walk_index(self) -> WalkIndex:
        """The shared Algorithm 6 walk index (built on first access)."""
        if self._walk_index is None:
            self._walk_index = WalkIndex.built(
                self._graph,
                self._walk_length,
                self._samples,
                seed=self._rng,
            )
        return self._walk_index

    @property
    def summarizer(self) -> Summarizer:
        """The configured offline summarizer (built on first access)."""
        if self._summarizer is None:
            self._summarizer = self._make_summarizer(self._summarizer_spec)
        return self._summarizer

    def _make_summarizer(self, spec: Union[str, Summarizer]) -> Summarizer:
        if isinstance(spec, Summarizer):
            return spec
        if spec == "lrw":
            return LRWSummarizer(
                self._graph,
                self._topic_index,
                self.walk_index,
                rep_fraction=self._rep_fraction,
                metrics=self._metrics,
            )
        if spec == "rcl":
            return RCLSummarizer(
                self._graph,
                self._topic_index,
                max_hops=self._walk_length,
                sample_rate=self._sample_rate,
                rep_fraction=self._rep_fraction,
                walk_index=self.walk_index,
                seed=self._rng,
                metrics=self._metrics,
            )
        raise ConfigurationError(
            f"unknown summarizer {spec!r}; choose from {_SUMMARIZER_NAMES} "
            "or pass a Summarizer instance"
        )

    # ------------------------------------------------------------------
    def summary(self, topic_id: int) -> TopicSummary:
        """Cached topic summary (offline stage, lazily per topic)."""
        topic_id = self._topic_index.resolve(topic_id)
        cached = self._summaries.get(topic_id)
        if cached is None:
            cached = self.summarizer.summarize(topic_id)
            self._summaries[topic_id] = cached
        return cached

    def use_propagation_index(self, index: PropagationIndex) -> "PITEngine":
        """Swap in a pre-built propagation index (e.g. loaded from disk).

        The index must cover this engine's graph; entries it already holds
        are served as-is and any missing ones still build lazily.
        """
        if (
            index.graph.n_nodes != self._graph.n_nodes
            or index.graph.n_edges != self._graph.n_edges
        ):
            raise ConfigurationError(
                f"propagation index covers a graph with "
                f"{index.graph.n_nodes} nodes/{index.graph.n_edges} edges, "
                f"but the engine's graph has {self._graph.n_nodes} nodes/"
                f"{self._graph.n_edges} edges"
            )
        self.propagation_index = index
        self._searcher.set_propagation_index(index)
        if self._metrics is not None:
            index.set_metrics(self._metrics)
        return self

    def build(self, topics: Optional[Iterable[Union[int, str]]] = None) -> "PITEngine":
        """Run the offline stage eagerly.

        Builds the walk index and the summaries of *topics* (default: every
        topic in the space). Propagation entries stay lazy - they are
        per-user and the paper also materializes them independently.
        """
        if topics is None:
            topics = range(self._topic_index.n_topics)
        for topic in topics:
            self.summary(self._topic_index.resolve(topic))
        return self

    @property
    def n_summaries(self) -> int:
        """Number of topic summaries built so far."""
        return len(self._summaries)

    # ------------------------------------------------------------------
    def search(
        self,
        user: int,
        query: Union[str, KeywordQuery],
        k: int = 10,
        *,
        with_stats: bool = False,
    ):
        """Top-k personalized influential topics for *user* (Algorithm 10).

        Returns the ranked :class:`~repro.core.search.SearchResult` list,
        or ``(results, stats)`` when *with_stats* is true.
        """
        results, stats = self._searcher.search(user, query, k)
        if with_stats:
            return results, stats
        return results

    def search_batch(
        self,
        requests: Iterable[Tuple[int, Union[str, KeywordQuery]]],
        k: int = 10,
        *,
        with_stats: bool = False,
    ):
        """Answer many ``(user, query)`` requests in one batched call.

        Delegates to
        :meth:`~repro.core.search.PersonalizedSearcher.search_many`:
        requests sharing a keyword query are grouped so topic resolution
        and summary arrays are paid once per distinct query. Returns a
        list aligned with the input order - each element the ranked
        results, or ``(results, stats)`` when *with_stats* is true.
        """
        outcomes = self._searcher.search_many(requests, k)
        if with_stats:
            return outcomes
        return [results for results, _ in outcomes]

    def cache_stats(self):
        """Snapshots of the searcher's bounded serving caches.

        A tuple of :class:`~repro.core.diagnostics.CacheStats`, empty when
        the engine was built without cache budgets.
        """
        return self._searcher.cache_stats()

    def set_metrics(self, registry: Optional[MetricsRegistry]) -> "PITEngine":
        """Route every engine-owned component's metrics to *registry*.

        ``None`` restores the process-wide default; a
        :class:`~repro.obs.registry.NullRegistry` disables recording
        (the benchmark's overhead baseline).
        """
        self._metrics = registry
        self.propagation_index.set_metrics(registry)
        self._searcher.set_metrics(registry)
        if self._summarizer is not None and hasattr(
            self._summarizer, "set_metrics"
        ):
            self._summarizer.set_metrics(registry)
        return self

    def metrics_snapshot(self) -> MetricsSnapshot:
        """A coherent snapshot of the engine's metrics registry.

        Publishes the point-in-time gauges first - cache hit ratios and
        occupancy, propagation-index size, summary count - then snapshots.
        Gauges are published here (snapshot time) rather than per search,
        keeping the serving hot path to counter adds only.
        """
        registry = (
            self._metrics if self._metrics is not None else get_registry()
        )
        self._searcher.publish_cache_gauges(registry)
        registry.set_gauge(
            "propagation.entries_cached", self.propagation_index.n_cached
        )
        registry.set_gauge(
            "propagation.index_bytes", self.propagation_index.memory_bytes()
        )
        registry.set_gauge("summaries.cached", self.n_summaries)
        registry.set_gauge("engine.memory_bytes", self.memory_bytes())
        return registry.snapshot()

    def memory_bytes(self) -> int:
        """Approximate resident size of all engine-owned indexes.

        Covers the propagation index, the walk index (when built), every
        cached topic summary (including its frozen array form, via
        :meth:`~repro.core.summarization.TopicSummary.memory_bytes`), and
        the online searcher's bounded serving caches and compiled query
        plans.
        """
        total = self.propagation_index.memory_bytes()
        if self._walk_index is not None and self._walk_index.is_built:
            total += self._walk_index.memory_bytes()
        total += sum(s.memory_bytes() for s in self._summaries.values())
        total += self._searcher.cache_memory_bytes()
        summary_stats = self._searcher.summary_cache_stats()
        if summary_stats is not None:
            # The summary-array LRU aliases array forms already charged
            # via TopicSummary.memory_bytes(); back out the double count.
            total -= summary_stats.current_bytes
        return total
