"""Node sampling strategies (substrate S3).

RCL-A grouping measures reachability against a sampled node set ``V'``. The
paper samples "each node with a probability proportional to the degree of the
node" (§3.1 / §6). Uniform sampling is also provided for ablations.
"""

from __future__ import annotations

import numpy as np

from .._utils import SeedLike, coerce_rng
from ..exceptions import ConfigurationError, EmptyGraphError
from .digraph import SocialGraph

__all__ = ["sample_nodes_by_degree", "sample_nodes_uniform", "sample_rate_to_count"]


def sample_rate_to_count(graph: SocialGraph, rate: float) -> int:
    """Translate a sample *rate* like the paper's 1% / 5% / 10% into a count.

    Always returns at least 1 for a non-empty graph so that sampling-based
    estimates remain defined.
    """
    if not 0.0 < rate <= 1.0:
        raise ConfigurationError(f"sample rate must be in (0, 1], got {rate!r}")
    if graph.n_nodes == 0:
        raise EmptyGraphError("cannot sample from an empty graph")
    return max(1, int(round(rate * graph.n_nodes)))


def sample_nodes_by_degree(
    graph: SocialGraph, count: int, seed: SeedLike = None
) -> np.ndarray:
    """Sample *count* distinct nodes with probability proportional to degree.

    Degree here is total (in + out) degree. Isolated nodes (degree 0) can
    only be drawn once all positive-degree nodes are exhausted, matching the
    intuition that the sample should consist of socially active users.
    """
    _check_count(graph, count)
    rng = coerce_rng(seed)
    degrees = graph.total_degrees().astype(np.float64)
    total = degrees.sum()
    if total == 0.0:
        # Every node is isolated; fall back to uniform.
        return sample_nodes_uniform(graph, count, rng)
    positive = np.flatnonzero(degrees > 0)
    if count <= positive.size:
        probs = degrees[positive] / degrees[positive].sum()
        chosen = rng.choice(positive, size=count, replace=False, p=probs)
        return np.sort(chosen.astype(np.int64))
    # Need more nodes than have positive degree: take all of them, then pad
    # uniformly from the isolated remainder.
    isolated = np.flatnonzero(degrees == 0)
    pad = rng.choice(isolated, size=count - positive.size, replace=False)
    return np.sort(np.concatenate([positive, pad]).astype(np.int64))


def sample_nodes_uniform(
    graph: SocialGraph, count: int, seed: SeedLike = None
) -> np.ndarray:
    """Sample *count* distinct nodes uniformly at random."""
    _check_count(graph, count)
    rng = coerce_rng(seed)
    chosen = rng.choice(graph.n_nodes, size=count, replace=False)
    return np.sort(chosen.astype(np.int64))


def _check_count(graph: SocialGraph, count: int) -> None:
    if graph.n_nodes == 0:
        raise EmptyGraphError("cannot sample from an empty graph")
    if not 0 < count <= graph.n_nodes:
        raise ConfigurationError(
            f"sample count must be in [1, {graph.n_nodes}], got {count!r}"
        )
