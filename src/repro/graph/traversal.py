"""Hop-limited graph traversals (substrate S4).

RCL-A grouping (paper §3.1) and centroid selection (§3.2) repeatedly need
"the set of nodes that can reach ``u`` within ``L`` hops" and hop distances
between nodes. These are plain breadth-first searches; the functions here
work directly on the CSR arrays of :class:`~repro.graph.digraph.SocialGraph`
and return numpy structures.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np

from ..exceptions import ConfigurationError
from .digraph import SocialGraph

__all__ = [
    "forward_reachable",
    "reverse_reachable",
    "hop_distances",
    "reverse_hop_distances",
    "hop_distance",
]

_UNREACHED = -1


def _bfs(graph: SocialGraph, source: int, max_hops: Optional[int], reverse: bool) -> np.ndarray:
    """Hop distances from *source*, ``-1`` where unreached.

    With ``reverse=True`` edges are traversed backwards, so the result is the
    distance *to* ``source`` for every node. Level-synchronous over the CSR
    arrays: each level is one vectorized gather + dedup, so the per-edge
    Python overhead of a classic queue BFS is avoided.
    """
    if max_hops is not None and max_hops < 0:
        raise ConfigurationError(f"max_hops must be >= 0, got {max_hops}")
    if reverse:
        indptr, targets = graph._in_indptr, graph._in_sources
    else:
        indptr, targets = graph._out_indptr, graph._out_targets
    dist = np.full(graph.n_nodes, _UNREACHED, dtype=np.int64)
    source = graph._check_node(source)
    dist[source] = 0
    frontier = np.asarray([source], dtype=np.int64)
    depth = 0
    while frontier.size and (max_hops is None or depth < max_hops):
        chunks = [targets[indptr[u]:indptr[u + 1]] for u in frontier]
        neighbors = np.concatenate(chunks) if len(chunks) > 1 else chunks[0]
        if neighbors.size == 0:
            break
        neighbors = np.unique(neighbors)
        neighbors = neighbors[dist[neighbors] == _UNREACHED]
        if neighbors.size == 0:
            break
        depth += 1
        dist[neighbors] = depth
        frontier = neighbors
    return dist


def hop_distances(
    graph: SocialGraph, source: int, max_hops: Optional[int] = None
) -> np.ndarray:
    """Minimum hop count from *source* to every node (``-1`` if unreached)."""
    return _bfs(graph, source, max_hops, reverse=False)


def reverse_hop_distances(
    graph: SocialGraph, target: int, max_hops: Optional[int] = None
) -> np.ndarray:
    """Minimum hop count from every node *to* ``target`` (``-1`` if unreached)."""
    return _bfs(graph, target, max_hops, reverse=True)


def hop_distance(graph: SocialGraph, source: int, target: int,
                 max_hops: Optional[int] = None) -> int:
    """Minimum hops from *source* to *target*; ``-1`` when unreachable in bound."""
    return int(hop_distances(graph, source, max_hops)[graph._check_node(target)])


def forward_reachable(
    graph: SocialGraph, source: int, max_hops: int, *, include_source: bool = False
) -> np.ndarray:
    """Ids of nodes reachable *from* ``source`` within ``max_hops`` hops."""
    dist = hop_distances(graph, source, max_hops)
    mask = dist >= (0 if include_source else 1)
    return np.flatnonzero(mask).astype(np.int64)


def reverse_reachable(
    graph: SocialGraph, target: int, max_hops: int, *, include_target: bool = False
) -> np.ndarray:
    """Ids of nodes that can reach ``target`` within ``max_hops`` hops.

    This is the set the paper writes as ``{x | x ->^L target}`` and that the
    walk index materializes as ``I_L[target]`` (Algorithm 6, line 14).
    """
    dist = reverse_hop_distances(graph, target, max_hops)
    mask = dist >= (0 if include_target else 1)
    return np.flatnonzero(mask).astype(np.int64)


def pairwise_hop_distances(
    graph: SocialGraph, sources: Iterable[int], max_hops: Optional[int] = None
) -> Dict[int, np.ndarray]:
    """Hop-distance arrays keyed by each source in *sources*.

    Convenience used by closeness-centrality computations; one BFS per source.
    """
    return {int(s): hop_distances(graph, int(s), max_hops) for s in sources}
