"""Hop-limited graph traversals (substrate S4).

RCL-A grouping (paper §3.1) and centroid selection (§3.2) repeatedly need
"the set of nodes that can reach ``u`` within ``L`` hops" and hop distances
between nodes. These are plain breadth-first searches; the functions here
work directly on the CSR arrays of :class:`~repro.graph.digraph.SocialGraph`
and return numpy structures.

Two batched kernels serve the offline summarizers, which ask these
questions for *many* targets at once:

* :func:`reachability_bitsets` - one frontier-synchronous BFS over all
  targets simultaneously, carrying a packed ``uint64`` bitset row per
  graph node (bit ``j`` = "this node reaches target ``j``");
* :func:`hop_distance_matrix` - the same propagation, additionally
  recording the iteration at which each bit first sets, i.e. the hop
  distance from every node to every target.

Both do ``L`` passes of a single vectorized gather + segment-OR over the
CSR arrays instead of one Python-level BFS per target, which is what makes
RCL-A's grouping/voting/centrality array-native.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from ..exceptions import ConfigurationError
from .digraph import SocialGraph

__all__ = [
    "forward_reachable",
    "reverse_reachable",
    "hop_distances",
    "reverse_hop_distances",
    "hop_distance",
    "forward_closure",
    "theta_forward_closure",
    "reachability_bitsets",
    "hop_distance_matrix",
    "unpack_bitset",
]

_UNREACHED = -1


def _bfs(graph: SocialGraph, source: int, max_hops: Optional[int], reverse: bool) -> np.ndarray:
    """Hop distances from *source*, ``-1`` where unreached.

    With ``reverse=True`` edges are traversed backwards, so the result is the
    distance *to* ``source`` for every node. Level-synchronous over the CSR
    arrays: each level is one vectorized gather + dedup, so the per-edge
    Python overhead of a classic queue BFS is avoided.
    """
    if max_hops is not None and max_hops < 0:
        raise ConfigurationError(f"max_hops must be >= 0, got {max_hops}")
    if reverse:
        indptr, targets = graph._in_indptr, graph._in_sources
    else:
        indptr, targets = graph._out_indptr, graph._out_targets
    dist = np.full(graph.n_nodes, _UNREACHED, dtype=np.int64)
    source = graph._check_node(source)
    dist[source] = 0
    frontier = np.asarray([source], dtype=np.int64)
    depth = 0
    while frontier.size and (max_hops is None or depth < max_hops):
        chunks = [targets[indptr[u]:indptr[u + 1]] for u in frontier]
        neighbors = np.concatenate(chunks) if len(chunks) > 1 else chunks[0]
        if neighbors.size == 0:
            break
        neighbors = np.unique(neighbors)
        neighbors = neighbors[dist[neighbors] == _UNREACHED]
        if neighbors.size == 0:
            break
        depth += 1
        dist[neighbors] = depth
        frontier = neighbors
    return dist


def hop_distances(
    graph: SocialGraph, source: int, max_hops: Optional[int] = None
) -> np.ndarray:
    """Minimum hop count from *source* to every node (``-1`` if unreached)."""
    return _bfs(graph, source, max_hops, reverse=False)


def reverse_hop_distances(
    graph: SocialGraph, target: int, max_hops: Optional[int] = None
) -> np.ndarray:
    """Minimum hop count from every node *to* ``target`` (``-1`` if unreached)."""
    return _bfs(graph, target, max_hops, reverse=True)


def hop_distance(graph: SocialGraph, source: int, target: int,
                 max_hops: Optional[int] = None) -> int:
    """Minimum hops from *source* to *target*; ``-1`` when unreachable in bound."""
    return int(hop_distances(graph, source, max_hops)[graph._check_node(target)])


def forward_reachable(
    graph: SocialGraph, source: int, max_hops: int, *, include_source: bool = False
) -> np.ndarray:
    """Ids of nodes reachable *from* ``source`` within ``max_hops`` hops."""
    dist = hop_distances(graph, source, max_hops)
    mask = dist >= (0 if include_source else 1)
    return np.flatnonzero(mask).astype(np.int64)


def reverse_reachable(
    graph: SocialGraph, target: int, max_hops: int, *, include_target: bool = False
) -> np.ndarray:
    """Ids of nodes that can reach ``target`` within ``max_hops`` hops.

    This is the set the paper writes as ``{x | x ->^L target}`` and that the
    walk index materializes as ``I_L[target]`` (Algorithm 6, line 14).
    """
    dist = reverse_hop_distances(graph, target, max_hops)
    mask = dist >= (0 if include_target else 1)
    return np.flatnonzero(mask).astype(np.int64)


def pairwise_hop_distances(
    graph: SocialGraph, sources: Iterable[int], max_hops: Optional[int] = None
) -> Dict[int, np.ndarray]:
    """Hop-distance arrays keyed by each source in *sources*.

    Convenience used by closeness-centrality computations; one BFS per source.
    """
    return {int(s): hop_distances(graph, int(s), max_hops) for s in sources}


# ---------------------------------------------------------------------------
# Batched bitset kernels
# ---------------------------------------------------------------------------

_ONE = np.uint64(1)
_SIX = np.uint64(6)
_LOW6 = np.uint64(63)


def _seed_bits(
    graph: SocialGraph, targets, max_hops: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shared validation + seeding for the bitset kernels.

    Returns ``(targets, bits, words, shifts)`` where *bits* is the
    ``(n_nodes, W)`` uint64 matrix with target ``j``'s own bit set, and
    *words*/*shifts* locate bit ``j`` (column ``j >> 6``, shift ``j & 63``).
    """
    if max_hops < 0:
        raise ConfigurationError(f"max_hops must be >= 0, got {max_hops}")
    targets = graph.validate_nodes(targets)
    if targets.size == 0:
        raise ConfigurationError("target set is empty")
    n_words = (targets.size + 63) // 64
    bits = np.zeros((graph.n_nodes, n_words), dtype=np.uint64)
    cols = np.arange(targets.size, dtype=np.uint64)
    words = (cols >> _SIX).astype(np.int64)
    shifts = cols & _LOW6
    # bitwise_or.at: unbuffered, so duplicate targets both land.
    np.bitwise_or.at(bits, (targets, words), _ONE << shifts)
    return targets, bits, words, shifts


def _propagate_once(
    bits: np.ndarray, indptr: np.ndarray, neighbors: np.ndarray
) -> np.ndarray:
    """One frontier-synchronous level: OR each node's neighbours into it.

    ``new[v] = bits[v] | OR_{(v,w) in E} bits[w]`` - after ``d`` rounds,
    bit ``j`` of row ``v`` is set iff ``v`` reaches target ``j`` within
    ``d`` hops.
    """
    if neighbors.size == 0:
        return bits
    gathered = bits[neighbors]
    # reduceat needs in-bounds segment starts; empty trailing segments
    # would index past the end, so clip and zero them afterwards.
    starts = np.minimum(indptr[:-1], neighbors.size - 1)
    aggregated = np.bitwise_or.reduceat(gathered, starts, axis=0)
    empty = indptr[:-1] == indptr[1:]
    if empty.any():
        aggregated[empty] = 0
    return bits | aggregated


def reachability_bitsets(
    graph: SocialGraph, targets, max_hops: int
) -> np.ndarray:
    """Packed multi-target reachability: who reaches which target in L hops.

    Returns a ``(n_nodes, ceil(len(targets)/64))`` ``uint64`` matrix where
    bit ``j`` of row ``v`` is set iff ``v`` can reach ``targets[j]`` within
    *max_hops* forward hops along at least one directed path. Matching the
    single-target :func:`reverse_reachable` (which pins the target at
    distance 0), a target's own bit is always clear on its own row - even
    when a cycle returns to it within the horizon.

    One call replaces ``len(targets)`` reverse BFS runs: each of the
    ``max_hops`` rounds is a single gather of all out-neighbour rows plus a
    segment-OR over the CSR layout, with early exit once the bitsets stop
    changing.
    """
    targets, bits, words, shifts = _seed_bits(graph, targets, max_hops)
    indptr, neighbors = graph._out_indptr, graph._out_targets
    for _ in range(max_hops):
        new = _propagate_once(bits, indptr, neighbors)
        if new is bits or np.array_equal(new, bits):
            break
        bits = new
    # Clear each target's own seed bit (distance 0 is not "reaching").
    np.bitwise_and.at(bits, (targets, words), ~(_ONE << shifts))
    return bits


def forward_closure(
    graph: SocialGraph,
    sources,
    max_hops: Optional[int] = None,
    *,
    extra_edges: Optional[Tuple[np.ndarray, np.ndarray]] = None,
) -> np.ndarray:
    """Sorted ids of every node reachable *from* any of *sources*.

    The union-of-forward-BFS dual of :func:`reachability_bitsets`,
    computed by the same packed-bitset propagation run over the in-CSR
    arrays (so set bits spread along edge direction instead of against
    it). Sources count as reaching themselves — the delta engine seeds
    this with the endpoints of changed edges and needs those endpoints
    in the result. With ``max_hops=None`` the propagation runs to the
    transitive-closure fixpoint. Returns an empty array for an empty
    source set.

    ``extra_edges`` is a ``(sources, targets)`` pair of parallel arrays
    of directed edges propagated *in addition to* the graph's own — the
    delta engine passes the edges a batch removed, so a single run over
    the new graph covers the union topology (and therefore both the old
    and the new graph's closures) instead of running the kernel twice.
    """
    arr = graph.validate_nodes(sources)
    if arr.size == 0:
        return np.empty(0, dtype=np.int64)
    extra_src = extra_tgt = None
    if extra_edges is not None:
        extra_src = np.asarray(extra_edges[0], dtype=np.int64)
        extra_tgt = np.asarray(extra_edges[1], dtype=np.int64)
        if extra_src.size == 0:
            extra_src = None
    remaining = graph.n_nodes if max_hops is None else max_hops
    _, bits, _, _ = _seed_bits(graph, arr, remaining)
    indptr, neighbors = graph._in_indptr, graph._in_sources
    while remaining > 0:
        new = _propagate_once(bits, indptr, neighbors)
        if extra_src is not None:
            if new is bits:
                new = bits.copy()
            # Unbuffered OR so several extra edges into one target all
            # land; gathers from the pre-round state like the kernel.
            np.bitwise_or.at(new, extra_tgt, bits[extra_src])
        if new is bits or np.array_equal(new, bits):
            break
        bits = new
        remaining -= 1
    return np.flatnonzero(bits.any(axis=1)).astype(np.int64)


def theta_forward_closure(
    graph: SocialGraph, sources, theta: float, *,
    max_hops: Optional[int] = None,
) -> np.ndarray:
    """Nodes some source reaches along a walk of probability >= *theta*.

    The probability-bounded refinement of :func:`forward_closure`: node
    ``v`` is included iff the best walk product from any source to ``v``
    is at least *theta* (sources count with product 1). Because edge
    probabilities are at most 1, every prefix of a qualifying walk also
    clears *theta*, so the propagation can clamp sub-threshold values to
    zero each round without losing any qualifying walk - which is what
    makes this exact, not a heuristic, and lets it converge in a handful
    of rounds on graphs whose plain transitive closure is everything.

    This is precisely the set of entries a change at the source nodes
    can reach in the propagation index's reverse branch expansion (which
    prunes any branch whose running product drops below theta), so the
    delta engine uses it as the entry-level affected set.
    """
    arr = graph.validate_nodes(sources)
    if arr.size == 0:
        return np.empty(0, dtype=np.int64)
    if not 0.0 < theta <= 1.0:
        raise ConfigurationError(
            f"theta must be in (0, 1], got {theta!r}"
        )
    best = np.zeros(graph.n_nodes, dtype=np.float64)
    best[arr] = 1.0
    indptr, in_sources = graph._in_indptr, graph._in_sources
    in_probs = graph._in_probs
    if in_sources.size == 0:
        return np.sort(arr)
    starts = np.minimum(indptr[:-1], in_sources.size - 1)
    empty = indptr[:-1] == indptr[1:]
    remaining = graph.n_nodes if max_hops is None else max_hops
    while remaining > 0:
        gathered = best[in_sources] * in_probs
        hop = np.maximum.reduceat(gathered, starts)
        if empty.any():
            hop[empty] = 0.0
        hop[hop < theta] = 0.0
        new = np.maximum(best, hop)
        if np.array_equal(new, best):
            break
        best = new
        remaining -= 1
    return np.flatnonzero(best > 0.0).astype(np.int64)


def hop_distance_matrix(
    graph: SocialGraph, targets, max_hops: int
) -> np.ndarray:
    """Forward hop distances from every node to every target, batched.

    Returns an ``(n_nodes, len(targets))`` ``int64`` matrix whose entry
    ``[v, j]`` is the minimum number of forward hops from ``v`` to
    ``targets[j]`` - ``0`` on the target's own row, ``-1`` when
    unreachable within *max_hops*. Equivalent to one
    :func:`hop_distances` BFS per target read at the target column, but
    computed as a single bitset propagation that records the round at
    which each bit first sets.
    """
    targets, bits, words, shifts = _seed_bits(graph, targets, max_hops)
    distance = np.full((graph.n_nodes, targets.size), -1, dtype=np.int64)
    distance[targets, np.arange(targets.size)] = 0
    indptr, neighbors = graph._out_indptr, graph._out_targets
    for depth in range(1, max_hops + 1):
        new = _propagate_once(bits, indptr, neighbors)
        fresh = new & ~bits
        if not fresh.any():
            break
        for j in range(targets.size):
            column = (fresh[:, words[j]] >> shifts[j]) & _ONE
            rows = np.flatnonzero(column)
            if rows.size:
                distance[rows, j] = depth
        bits = new
    return distance


def unpack_bitset(bits: np.ndarray, n_bits: int) -> np.ndarray:
    """Expand packed ``uint64`` bitset rows into a boolean matrix.

    ``unpack_bitset(reachability_bitsets(g, targets, L), len(targets))``
    is the dense ``(n_nodes, len(targets))`` reachability matrix.
    """
    if bits.ndim != 2:
        raise ConfigurationError("bits must be a 2-D packed bitset matrix")
    if n_bits > bits.shape[1] * 64:
        raise ConfigurationError(
            f"cannot unpack {n_bits} bits from {bits.shape[1]} words"
        )
    unpacked = np.unpackbits(
        bits.view(np.uint8), axis=1, count=n_bits, bitorder="little"
    )
    return unpacked.astype(bool)
