"""Graph serialization (substrate S5).

Two formats are supported:

* **Edge-list text** - one ``source target probability`` triple per line,
  ``#`` comments allowed. Interoperable with SNAP-style tooling; files
  written here add ``format=``/``checksum=`` tokens to the header comment
  that are verified on load when present.
* **NPZ bundles** - the CSR arrays verbatim; loss-free and fast for the
  dataset cache used by the benchmark harness. Checksummed and versioned
  via :mod:`repro._artifacts`.

All writers publish atomically (same-directory temp file + ``os.replace``)
so an interrupted save never leaves a half-written file at the target
path. Corruption detected at load time raises
:class:`~repro.exceptions.ArtifactCorruptedError`.
"""

from __future__ import annotations

import hashlib
import io
from pathlib import Path
from typing import List, Optional, Tuple, Union

import numpy as np

from .._artifacts import (
    FORMAT_VERSION,
    atomic_write_bytes,
    load_npz_payload,
    read_artifact_bytes,
    require_keys,
    save_npz_payload,
)
from ..exceptions import ArtifactCorruptedError, EdgeError, GraphError
from .digraph import SocialGraph

__all__ = [
    "save_edge_list",
    "load_edge_list",
    "save_npz",
    "load_npz",
]

PathLike = Union[str, Path]


def _body_digest(body: str) -> str:
    """SHA-256 of everything after the header line (the edge data)."""
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


def save_edge_list(graph: SocialGraph, path: PathLike) -> None:
    """Write the graph as a ``source target probability`` text file.

    The header comment carries the node/edge counts plus a format version
    and a SHA-256 checksum of the data lines; the write is atomic.
    """
    buffer = io.StringIO()
    for source, target, probability in graph.iter_edges():
        buffer.write(f"{source} {target} {probability!r}\n")
    body = buffer.getvalue()
    header = (
        f"# nodes={graph.n_nodes} edges={graph.n_edges} "
        f"format={FORMAT_VERSION} checksum=sha256:{_body_digest(body)}\n"
    )
    atomic_write_bytes(Path(path), (header + body).encode("utf-8"))


def load_edge_list(path: PathLike, n_nodes: Optional[int] = None) -> SocialGraph:
    """Read a graph written by :func:`save_edge_list`.

    The node count is taken from the *n_nodes* argument when given, from
    the header comment otherwise, and finally inferred from the maximum
    endpoint id. When a node count is declared, every edge endpoint is
    validated against it - an out-of-range endpoint raises
    :class:`~repro.exceptions.EdgeError` naming the offending line
    instead of silently growing the graph or failing later with an
    opaque error. A header checksum, when present, is verified before
    parsing; files from external tooling (no checksum) load unchecked.
    """
    path = Path(path)
    text = read_artifact_bytes(path, "edge list").decode("utf-8")
    _verify_edge_list_checksum(path, text)
    edges: List[Tuple[int, int, float]] = []
    linenos: List[int] = []
    header_nodes = None
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            header_nodes = _parse_header_nodes(line, header_nodes)
            continue
        parts = line.split()
        if len(parts) != 3:
            raise GraphError(
                f"{path}:{lineno}: expected 'source target probability', got {line!r}"
            )
        try:
            source, target = int(parts[0]), int(parts[1])
            probability = float(parts[2])
        except ValueError as exc:
            raise GraphError(f"{path}:{lineno}: {exc}") from exc
        if source < 0 or target < 0:
            raise EdgeError(
                f"{path}:{lineno}: negative endpoint in edge "
                f"({source}, {target})"
            )
        if not 0.0 < probability <= 1.0:
            raise EdgeError(
                f"{path}:{lineno}: probability {probability!r} outside (0, 1]"
            )
        edges.append((source, target, probability))
        linenos.append(lineno)
    declared = n_nodes if n_nodes is not None else header_nodes
    if declared is not None:
        bound = int(declared)
        origin = "n_nodes argument" if n_nodes is not None else "header"
        for (source, target, _), lineno in zip(edges, linenos):
            if source >= bound or target >= bound:
                raise EdgeError(
                    f"{path}:{lineno}: edge ({source}, {target}) exceeds the "
                    f"declared node count {bound} ({origin})"
                )
        total = bound
    else:
        total = 1 + max((max(s, t) for s, t, _ in edges), default=-1)
    return SocialGraph(total, edges)


def _verify_edge_list_checksum(path: Path, text: str) -> None:
    header, _, body = text.partition("\n")
    if not header.startswith("#"):
        return
    for token in header.lstrip("#").split():
        if token.startswith("checksum=sha256:"):
            expected = token.split(":", 1)[1]
            actual = _body_digest(body)
            if actual != expected:
                raise ArtifactCorruptedError(
                    path, expected=expected, actual=actual
                )
            return


def _parse_header_nodes(line: str, current):
    for token in line.lstrip("#").split():
        if token.startswith("nodes="):
            try:
                return int(token.split("=", 1)[1])
            except ValueError:
                return current
    return current


def save_npz(graph: SocialGraph, path: PathLike) -> None:
    """Atomically write the CSR arrays to a checksummed ``.npz`` file."""
    save_npz_payload(Path(path), {
        "n_nodes": np.asarray([graph.n_nodes], dtype=np.int64),
        "out_indptr": graph._out_indptr,
        "out_targets": graph._out_targets,
        "out_probs": graph._out_probs,
    })


def load_npz(path: PathLike) -> SocialGraph:
    """Read a graph written by :func:`save_npz`."""
    path = Path(path)
    payload = load_npz_payload(path, "graph bundle")
    require_keys(
        payload, ("n_nodes", "out_indptr", "out_targets", "out_probs"), path
    )
    n_nodes = int(payload["n_nodes"][0])
    indptr = payload["out_indptr"]
    targets = payload["out_targets"]
    probs = payload["out_probs"]
    edges = []
    try:
        for node in range(n_nodes):
            for j in range(indptr[node], indptr[node + 1]):
                edges.append((node, int(targets[j]), float(probs[j])))
    except (IndexError, ValueError) as exc:
        raise ArtifactCorruptedError(
            path, reason=f"inconsistent CSR arrays ({exc})"
        ) from exc
    return SocialGraph(n_nodes, edges)
