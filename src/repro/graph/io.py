"""Graph serialization (substrate S5).

Two formats are supported:

* **Edge-list text** - one ``source target probability`` triple per line,
  ``#`` comments allowed. Interoperable with SNAP-style tooling.
* **NPZ bundles** - the CSR arrays verbatim; loss-free and fast for the
  dataset cache used by the benchmark harness.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from ..exceptions import GraphError
from .digraph import SocialGraph

__all__ = [
    "save_edge_list",
    "load_edge_list",
    "save_npz",
    "load_npz",
]

PathLike = Union[str, Path]


def save_edge_list(graph: SocialGraph, path: PathLike) -> None:
    """Write the graph as a ``source target probability`` text file."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        handle.write(f"# nodes={graph.n_nodes} edges={graph.n_edges}\n")
        for source, target, probability in graph.iter_edges():
            handle.write(f"{source} {target} {probability!r}\n")


def load_edge_list(path: PathLike, n_nodes: int = None) -> SocialGraph:
    """Read a graph written by :func:`save_edge_list`.

    The node count is taken from the header comment when present, from the
    *n_nodes* argument otherwise, and finally inferred from the maximum
    endpoint id.
    """
    path = Path(path)
    edges = []
    header_nodes = None
    with path.open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                header_nodes = _parse_header_nodes(line, header_nodes)
                continue
            parts = line.split()
            if len(parts) != 3:
                raise GraphError(
                    f"{path}:{lineno}: expected 'source target probability', got {line!r}"
                )
            try:
                edges.append((int(parts[0]), int(parts[1]), float(parts[2])))
            except ValueError as exc:
                raise GraphError(f"{path}:{lineno}: {exc}") from exc
    if n_nodes is None:
        n_nodes = header_nodes
    if n_nodes is None:
        n_nodes = 1 + max((max(s, t) for s, t, _ in edges), default=-1)
    return SocialGraph(n_nodes, edges)


def _parse_header_nodes(line: str, current):
    for token in line.lstrip("#").split():
        if token.startswith("nodes="):
            try:
                return int(token.split("=", 1)[1])
            except ValueError:
                return current
    return current


def save_npz(graph: SocialGraph, path: PathLike) -> None:
    """Write the graph's CSR arrays to a compressed ``.npz`` file."""
    np.savez_compressed(
        Path(path),
        n_nodes=np.asarray([graph.n_nodes], dtype=np.int64),
        out_indptr=graph._out_indptr,
        out_targets=graph._out_targets,
        out_probs=graph._out_probs,
    )


def load_npz(path: PathLike) -> SocialGraph:
    """Read a graph written by :func:`save_npz`."""
    with np.load(Path(path)) as data:
        try:
            n_nodes = int(data["n_nodes"][0])
            indptr = data["out_indptr"]
            targets = data["out_targets"]
            probs = data["out_probs"]
        except KeyError as exc:
            raise GraphError(f"{path}: missing array {exc}") from exc
    edges = []
    for node in range(n_nodes):
        for j in range(indptr[node], indptr[node + 1]):
            edges.append((node, int(targets[j]), float(probs[j])))
    return SocialGraph(n_nodes, edges)
