"""Structural graph statistics (extends S2's dataset validation).

The paper characterizes its datasets by size and degree range (Figure 4).
These helpers compute the additional structural statistics EXPERIMENTS.md
reports when arguing that the scaled analogues preserve the crawl's shape:
degree-distribution tail heaviness, reciprocity, and local clustering.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..exceptions import EmptyGraphError
from .digraph import SocialGraph

__all__ = [
    "reciprocity",
    "power_law_tail_exponent",
    "gini_coefficient",
    "average_clustering_coefficient",
    "degree_summary",
]


def reciprocity(graph: SocialGraph) -> float:
    """Fraction of directed edges whose reverse edge also exists."""
    if graph.n_edges == 0:
        raise EmptyGraphError("reciprocity of an edgeless graph is undefined")
    edges = {(s, t) for s, t, _ in graph.iter_edges()}
    mutual = sum(1 for s, t in edges if (t, s) in edges)
    return mutual / len(edges)


def power_law_tail_exponent(
    graph: SocialGraph, *, minimum_degree: int = 2
) -> float:
    """Maximum-likelihood power-law exponent of the in-degree tail.

    Uses the discrete Hill/Clauset estimator
    ``alpha = 1 + n / sum(ln(d / (d_min - 0.5)))`` over in-degrees
    ``>= minimum_degree``. Heavy-tailed follow graphs land roughly in
    [1.5, 3.5]; the estimator is a characterization tool, not a fit test.
    """
    degrees = graph.in_degrees()
    tail = degrees[degrees >= minimum_degree].astype(np.float64)
    if tail.size == 0:
        raise EmptyGraphError(
            f"no nodes with in-degree >= {minimum_degree}"
        )
    return float(1.0 + tail.size / np.log(tail / (minimum_degree - 0.5)).sum())


def gini_coefficient(graph: SocialGraph) -> float:
    """Gini coefficient of the in-degree distribution (0 = equal, 1 = hub).

    A quick scalar for "how concentrated is attention": preferential-
    attachment graphs sit far above banded-degree graphs.
    """
    degrees = np.sort(graph.in_degrees().astype(np.float64))
    n = degrees.size
    if n == 0:
        raise EmptyGraphError("gini of an empty graph is undefined")
    total = degrees.sum()
    if total == 0.0:
        return 0.0
    index = np.arange(1, n + 1)
    return float((2.0 * (index * degrees).sum() - (n + 1) * total) / (n * total))


def average_clustering_coefficient(
    graph: SocialGraph, *, sample: int = 0, seed: int = 0
) -> float:
    """Mean local clustering coefficient over the undirected projection.

    For each node, the fraction of its neighbour pairs that are themselves
    connected (in either direction). ``sample > 0`` evaluates a random node
    subset, which is how large graphs are handled.
    """
    n = graph.n_nodes
    if n == 0:
        raise EmptyGraphError("clustering of an empty graph is undefined")
    undirected: Dict[int, set] = {v: set() for v in range(n)}
    for s, t, _ in graph.iter_edges():
        undirected[s].add(t)
        undirected[t].add(s)

    if sample and sample < n:
        rng = np.random.default_rng(seed)
        nodes = rng.choice(n, size=sample, replace=False)
    else:
        nodes = np.arange(n)

    coefficients = []
    for node in nodes:
        neighbors = sorted(undirected[int(node)])
        k = len(neighbors)
        if k < 2:
            coefficients.append(0.0)
            continue
        links = 0
        for i, a in enumerate(neighbors):
            peers = undirected[a]
            links += sum(1 for b in neighbors[i + 1:] if b in peers)
        coefficients.append(2.0 * links / (k * (k - 1)))
    return float(np.mean(coefficients))


def degree_summary(graph: SocialGraph) -> Dict[str, float]:
    """One-call summary used by the extended Figure 4 table."""
    out_degrees = graph.out_degrees()
    in_degrees = graph.in_degrees()
    return {
        "nodes": float(graph.n_nodes),
        "edges": float(graph.n_edges),
        "avg_out_degree": float(out_degrees.mean()) if out_degrees.size else 0.0,
        "max_in_degree": float(in_degrees.max()) if in_degrees.size else 0.0,
        "median_in_degree": float(np.median(in_degrees)) if in_degrees.size else 0.0,
        "reciprocity": reciprocity(graph) if graph.n_edges else 0.0,
        "in_degree_gini": gini_coefficient(graph),
    }
