"""Synthetic Twitter-like graph generators (substrate S2).

The paper evaluates on a 3M-user Twitter crawl plus three synthetic graphs
drawn from its degree bands (51-100, 101-500, 500-1000). We cannot ship the
crawl, so this module generates structurally comparable follow graphs:

* :func:`preferential_attachment_graph` - scale-free directed graph whose
  in-degree distribution is heavy-tailed, standing in for the real crawl.
* :func:`banded_degree_graph` - every node's out-degree is drawn uniformly
  from a band ``[low, high]``, reproducing the paper's synthetic datasets.

Both produce plain edge sets; :func:`assign_probabilities` then attaches
transition probabilities using one of the standard influence-model schemes
(weighted cascade, trivalency, or uniform random).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set, Tuple

import numpy as np

from .._utils import SeedLike, coerce_rng, require_in_range, require_positive
from ..exceptions import ConfigurationError
from .builder import GraphBuilder
from .digraph import SocialGraph

__all__ = [
    "preferential_attachment_graph",
    "banded_degree_graph",
    "assign_probabilities",
    "PROBABILITY_SCHEMES",
]

#: Names accepted by :func:`assign_probabilities`.
PROBABILITY_SCHEMES = ("weighted_cascade", "trivalency", "uniform", "attention")


def _edge_set_to_graph(
    n_nodes: int,
    edges: Set[Tuple[int, int]],
    scheme: str,
    rng: np.random.Generator,
) -> SocialGraph:
    probs = assign_probabilities(n_nodes, edges, scheme=scheme, seed=rng)
    return SocialGraph(n_nodes, probs)


def preferential_attachment_graph(
    n_nodes: int,
    out_degree: int = 8,
    *,
    reciprocity: float = 0.2,
    scheme: str = "weighted_cascade",
    seed: SeedLike = None,
) -> SocialGraph:
    """Directed scale-free "follow" graph.

    Each arriving node follows ``out_degree`` existing users, chosen with
    probability proportional to (1 + current in-degree) - the rich-get-richer
    dynamic that yields the heavy-tailed in-degree distribution observed on
    Twitter. With probability *reciprocity* a followed user follows back,
    which creates the mutual-influence cycles the paper's propagation paths
    rely on.

    Parameters
    ----------
    n_nodes:
        Number of users; must be at least 2.
    out_degree:
        Follows created by each arriving node (clipped to the number of
        existing nodes early in the process).
    reciprocity:
        Probability a follow is reciprocated.
    scheme:
        Probability scheme passed to :func:`assign_probabilities`.
    seed:
        Seed or generator for reproducibility.
    """
    require_in_range("n_nodes", n_nodes, 2)
    require_positive("out_degree", out_degree)
    if not 0.0 <= reciprocity <= 1.0:
        raise ConfigurationError(f"reciprocity must be in [0, 1], got {reciprocity!r}")
    rng = coerce_rng(seed)

    edges: Set[Tuple[int, int]] = set()
    # in_weight[v] = 1 + in_degree(v); sampled as an unnormalized categorical.
    in_weight = np.ones(n_nodes, dtype=np.float64)
    for new in range(1, n_nodes):
        k = min(out_degree, new)
        weights = in_weight[:new]
        probs = weights / weights.sum()
        targets = rng.choice(new, size=k, replace=False, p=probs)
        for target in targets:
            target = int(target)
            if (new, target) not in edges:
                edges.add((new, target))
                in_weight[target] += 1.0
            if reciprocity > 0.0 and rng.random() < reciprocity:
                if (target, new) not in edges:
                    edges.add((target, new))
                    in_weight[new] += 1.0
    return _edge_set_to_graph(n_nodes, edges, scheme, rng)


def banded_degree_graph(
    n_nodes: int,
    degree_low: int,
    degree_high: int,
    *,
    hub_bias: float = 1.0,
    scheme: str = "weighted_cascade",
    seed: SeedLike = None,
) -> SocialGraph:
    """Graph whose out-degrees are uniform in ``[degree_low, degree_high]``.

    Reproduces the paper's synthetic datasets ("nodes with degree range
    51-100, 101-500, 500-1000"). Follow targets are drawn from a Zipf-like
    popularity distribution controlled by *hub_bias* (0 = uniform targets,
    larger = more concentrated on popular users), so in-degrees remain
    heavy-tailed like the source crawl.
    """
    require_in_range("n_nodes", n_nodes, 2)
    require_in_range("degree_low", degree_low, 1)
    require_in_range("degree_high", degree_high, degree_low)
    if degree_high >= n_nodes:
        raise ConfigurationError(
            f"degree_high ({degree_high}) must be < n_nodes ({n_nodes})"
        )
    if hub_bias < 0:
        raise ConfigurationError(f"hub_bias must be >= 0, got {hub_bias!r}")
    rng = coerce_rng(seed)

    # Popularity ~ 1 / rank^hub_bias over a random permutation of nodes.
    ranks = rng.permutation(n_nodes) + 1
    popularity = 1.0 / np.power(ranks.astype(np.float64), hub_bias)
    popularity /= popularity.sum()

    edges: Set[Tuple[int, int]] = set()
    out_degrees = rng.integers(degree_low, degree_high + 1, size=n_nodes)
    for source in range(n_nodes):
        needed = int(out_degrees[source])
        # Over-sample, then trim: cheaper than rejection one at a time.
        attempts = 0
        chosen: Set[int] = set()
        while len(chosen) < needed and attempts < 8:
            draw = rng.choice(n_nodes, size=2 * needed, replace=True, p=popularity)
            for target in draw:
                target = int(target)
                if target != source:
                    chosen.add(target)
                    if len(chosen) == needed:
                        break
            attempts += 1
        for target in list(chosen)[:needed]:
            edges.add((source, target))
    return _edge_set_to_graph(n_nodes, edges, scheme, rng)


def assign_probabilities(
    n_nodes: int,
    edges: Iterable[Tuple[int, int]],
    *,
    scheme: str = "weighted_cascade",
    seed: SeedLike = None,
    uniform_low: float = 0.05,
    uniform_high: float = 0.4,
    attention_low: float = 0.6,
    attention_high: float = 0.95,
) -> List[Tuple[int, int, float]]:
    """Attach transition probabilities to bare ``(source, target)`` edges.

    Schemes (all standard in the influence-propagation literature):

    ``weighted_cascade``
        ``Λ(u, v) = 1 / in_degree(v)`` - every node distributes a unit of
        attention over its influencers.
    ``trivalency``
        Each edge gets one of {0.1, 0.01, 0.001} uniformly at random.
    ``uniform``
        Each edge gets an independent ``U(uniform_low, uniform_high)`` draw.
        The range matches the magnitude of the free edge weights in the
        paper's Example 1 / Figure 3. Caution: with average degree ``d``
        the per-step walk mass multiplies by ``d * mean``, so influence can
        *grow* with path length on dense graphs.
    ``attention``
        Each node ``u`` spreads a total influence budget
        ``U(attention_low, attention_high) < 1`` over its out-edges with
        random proportions. Row sums of the transition matrix stay below
        1, so aggregate walk mass strictly decays with path length - the
        regime the paper's Definition 1 and its θ-thresholded propagation
        index presume. This is the default scheme of the bundled datasets.
    """
    if scheme not in PROBABILITY_SCHEMES:
        raise ConfigurationError(
            f"unknown probability scheme {scheme!r}; choose from {PROBABILITY_SCHEMES}"
        )
    rng = coerce_rng(seed)
    edge_list = sorted(set((int(s), int(t)) for s, t in edges))

    if scheme == "weighted_cascade":
        in_degree = np.zeros(n_nodes, dtype=np.int64)
        for _, target in edge_list:
            in_degree[target] += 1
        return [
            (s, t, 1.0 / float(in_degree[t]))
            for s, t in edge_list
        ]
    if scheme == "attention":
        if not 0.0 < attention_low <= attention_high < 1.0:
            raise ConfigurationError(
                "attention budgets must satisfy 0 < low <= high < 1, got "
                f"({attention_low!r}, {attention_high!r})"
            )
        by_source: dict = {}
        for s, t in edge_list:
            by_source.setdefault(s, []).append(t)
        triples: List[Tuple[int, int, float]] = []
        for s in sorted(by_source):
            targets = by_source[s]
            budget = rng.uniform(attention_low, attention_high)
            shares = rng.uniform(0.5, 1.5, size=len(targets))
            shares *= budget / shares.sum()
            triples.extend(
                (s, t, float(p)) for t, p in zip(targets, shares)
            )
        return triples
    if scheme == "trivalency":
        choices = np.array([0.1, 0.01, 0.001])
        draws = rng.choice(choices, size=len(edge_list))
        return [(s, t, float(p)) for (s, t), p in zip(edge_list, draws)]
    # uniform
    if not 0.0 < uniform_low <= uniform_high <= 1.0:
        raise ConfigurationError(
            "uniform bounds must satisfy 0 < low <= high <= 1, got "
            f"({uniform_low!r}, {uniform_high!r})"
        )
    draws = rng.uniform(uniform_low, uniform_high, size=len(edge_list))
    return [(s, t, float(p)) for (s, t), p in zip(edge_list, draws)]
