"""Connected-component analysis and connectivity repair (part of S2).

The paper notes: "To ensure each generated dataset is a connected graph, a
few synthetic edges among the close nodes across disconnected components are
added" (§6.1). :func:`ensure_weakly_connected` implements exactly that
repair: it finds weakly connected components and stitches each secondary
component to the giant one with a pair of bridge edges.
"""

from __future__ import annotations

from collections import deque
from typing import List, Tuple

import numpy as np

from .._utils import SeedLike, coerce_rng
from ..exceptions import EmptyGraphError
from .builder import GraphBuilder
from .digraph import SocialGraph

__all__ = [
    "weakly_connected_components",
    "is_weakly_connected",
    "ensure_weakly_connected",
]


def weakly_connected_components(graph: SocialGraph) -> List[np.ndarray]:
    """Weakly connected components, largest first.

    Each component is a sorted ``int64`` array of node ids.
    """
    n = graph.n_nodes
    label = np.full(n, -1, dtype=np.int64)
    components: List[np.ndarray] = []
    for start in range(n):
        if label[start] != -1:
            continue
        comp_id = len(components)
        members = [start]
        label[start] = comp_id
        queue = deque([start])
        while queue:
            node = queue.popleft()
            for nxt in np.concatenate([graph.out_neighbors(node), graph.in_neighbors(node)]):
                nxt = int(nxt)
                if label[nxt] == -1:
                    label[nxt] = comp_id
                    members.append(nxt)
                    queue.append(nxt)
        components.append(np.asarray(sorted(members), dtype=np.int64))
    components.sort(key=len, reverse=True)
    return components


def is_weakly_connected(graph: SocialGraph) -> bool:
    """Whether the graph forms a single weakly connected component."""
    if graph.n_nodes == 0:
        raise EmptyGraphError("connectivity of the empty graph is undefined")
    return len(weakly_connected_components(graph)) == 1


def ensure_weakly_connected(
    graph: SocialGraph,
    *,
    bridge_probability: float = 0.1,
    bidirectional: bool = True,
    seed: SeedLike = None,
) -> Tuple[SocialGraph, int]:
    """Add bridge edges until the graph is weakly connected.

    For every component other than the giant one, a random member is linked
    to a random member of the giant component (and back, when
    *bidirectional*), mirroring the paper's repair of its synthetic datasets.

    Returns
    -------
    (graph, added):
        The repaired graph and the number of bridge edges added. When the
        input is already connected it is returned unchanged with ``added=0``.
    """
    components = weakly_connected_components(graph)
    if len(components) <= 1:
        return graph, 0
    rng = coerce_rng(seed)

    builder = GraphBuilder(graph.n_nodes)
    builder.add_edges(graph.iter_edges())
    giant = components[0]
    added = 0
    for component in components[1:]:
        inside = int(rng.choice(component))
        anchor = int(rng.choice(giant))
        if not builder.has_edge(anchor, inside):
            builder.add_edge(anchor, inside, bridge_probability)
            added += 1
        if bidirectional and not builder.has_edge(inside, anchor):
            builder.add_edge(inside, anchor, bridge_probability)
            added += 1
    return builder.build(), added
