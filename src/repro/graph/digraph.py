"""Directed social-network graph with per-edge transition probabilities.

This is substrate S1 from DESIGN.md. The paper models a social network as
``G = (V, E, T, Λ)`` where ``Λ`` maps each directed edge ``(u, v)`` to the
probability that influence propagates from ``u`` to ``v``. Topics ``T`` live
in a separate structure (:mod:`repro.topics`); this module is purely the
weighted digraph.

:class:`SocialGraph` is immutable and stored in compressed sparse row (CSR)
form in both directions, so forward propagation (out-edges) and the reverse
breadth-first searches used by the propagation index (in-edges) are both
cache-friendly ``O(degree)`` slices over numpy arrays.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import EdgeError, EmptyGraphError, NodeNotFoundError

__all__ = ["SocialGraph", "Edge"]

#: An edge as exposed to callers: (source, target, transition probability).
Edge = Tuple[int, int, float]


class SocialGraph:
    """An immutable directed graph whose edges carry transition probabilities.

    Parameters
    ----------
    n_nodes:
        Number of nodes; node ids are the contiguous range ``0 .. n_nodes-1``.
    edges:
        Iterable of ``(source, target, probability)`` triples. Probabilities
        must lie in ``(0, 1]``; self-loops and duplicate edges are rejected.

    Notes
    -----
    Use :class:`repro.graph.builder.GraphBuilder` for incremental
    construction; this constructor validates and freezes the edge set.
    """

    __slots__ = (
        "_n_nodes",
        "_out_indptr",
        "_out_targets",
        "_out_probs",
        "_in_indptr",
        "_in_sources",
        "_in_probs",
        "_edge_lookup",
    )

    def __init__(self, n_nodes: int, edges: Iterable[Edge]):
        if n_nodes < 0:
            raise EdgeError(f"n_nodes must be non-negative, got {n_nodes}")
        self._n_nodes = int(n_nodes)

        triples = list(edges)
        sources = np.fromiter((e[0] for e in triples), dtype=np.int64, count=len(triples))
        targets = np.fromiter((e[1] for e in triples), dtype=np.int64, count=len(triples))
        probs = np.fromiter((e[2] for e in triples), dtype=np.float64, count=len(triples))
        self._validate_edges(sources, targets, probs)

        self._out_indptr, self._out_targets, self._out_probs = self._to_csr(
            sources, targets, probs, self._n_nodes
        )
        self._in_indptr, self._in_sources, self._in_probs = self._to_csr(
            targets, sources, probs, self._n_nodes
        )
        # Hash lookup for (u, v) -> probability; built lazily on first use.
        self._edge_lookup: Optional[Dict[Tuple[int, int], float]] = None

    @classmethod
    def from_arrays(
        cls,
        n_nodes: int,
        sources: np.ndarray,
        targets: np.ndarray,
        probs: np.ndarray,
    ) -> "SocialGraph":
        """Construct a graph directly from parallel edge arrays.

        Same validation and CSR layout as the triple-iterable constructor,
        without the per-edge Python loop — the path the delta engine uses
        to materialize an edited edge set in one vectorized pass.
        """
        if n_nodes < 0:
            raise EdgeError(f"n_nodes must be non-negative, got {n_nodes}")
        graph = cls.__new__(cls)
        graph._n_nodes = int(n_nodes)
        sources = np.ascontiguousarray(sources, dtype=np.int64)
        targets = np.ascontiguousarray(targets, dtype=np.int64)
        probs = np.ascontiguousarray(probs, dtype=np.float64)
        if not sources.size == targets.size == probs.size:
            raise EdgeError(
                "sources, targets, and probs must have equal lengths"
            )
        graph._validate_edges(sources, targets, probs)
        graph._out_indptr, graph._out_targets, graph._out_probs = cls._to_csr(
            sources, targets, probs, graph._n_nodes
        )
        graph._in_indptr, graph._in_sources, graph._in_probs = cls._to_csr(
            targets, sources, probs, graph._n_nodes
        )
        graph._edge_lookup = None
        return graph

    @classmethod
    def _from_csr(
        cls,
        n_nodes: int,
        out_csr: Tuple[np.ndarray, np.ndarray, np.ndarray],
        in_csr: Tuple[np.ndarray, np.ndarray, np.ndarray],
    ) -> "SocialGraph":
        """Adopt prebuilt CSR faces without validation or sorting.

        Private fast path for the delta engine, which splices edits into
        an already-validated CSR pair. Both faces must describe the same
        edge set and already be in canonical (row, column) order.
        """
        graph = cls.__new__(cls)
        graph._n_nodes = int(n_nodes)
        graph._out_indptr, graph._out_targets, graph._out_probs = out_csr
        graph._in_indptr, graph._in_sources, graph._in_probs = in_csr
        graph._edge_lookup = None
        return graph

    def edge_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The edge set as parallel ``(sources, targets, probs)`` arrays.

        Rows come out in CSR order (sorted by source, then target). The
        sources array is materialized from the indptr; the other two are
        copies, so callers may edit them freely.
        """
        sources = np.repeat(
            np.arange(self._n_nodes, dtype=np.int64),
            np.diff(self._out_indptr),
        )
        return sources, self._out_targets.copy(), self._out_probs.copy()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _validate_edges(
        self, sources: np.ndarray, targets: np.ndarray, probs: np.ndarray
    ) -> None:
        n = self._n_nodes
        if sources.size == 0:
            return
        if sources.min(initial=0) < 0 or targets.min(initial=0) < 0:
            raise EdgeError("edge endpoints must be non-negative node ids")
        if sources.max(initial=-1) >= n or targets.max(initial=-1) >= n:
            bad = max(sources.max(initial=-1), targets.max(initial=-1))
            raise NodeNotFoundError(int(bad), n)
        if np.any(sources == targets):
            idx = int(np.argmax(sources == targets))
            raise EdgeError(f"self-loop on node {int(sources[idx])} is not allowed")
        if np.any(probs <= 0.0) or np.any(probs > 1.0):
            raise EdgeError("transition probabilities must lie in (0, 1]")
        # Duplicate detection on the (source, target) pair.
        keys = sources * n + targets
        if np.unique(keys).size != keys.size:
            raise EdgeError("duplicate edges are not allowed")

    @staticmethod
    def _to_csr(
        rows: np.ndarray, cols: np.ndarray, vals: np.ndarray, n: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sort COO triples into CSR arrays (indptr, indices, values)."""
        order = np.lexsort((cols, rows))
        rows = rows[order]
        cols = cols[order]
        vals = vals[order]
        # bincount is a single vectorized pass; np.add.at's unbuffered
        # scatter is far slower and this runs twice per construction.
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows, minlength=n), out=indptr[1:])
        return indptr, np.ascontiguousarray(cols), np.ascontiguousarray(vals)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Number of nodes in the graph."""
        return self._n_nodes

    @property
    def n_edges(self) -> int:
        """Number of directed edges in the graph."""
        return int(self._out_targets.size)

    @property
    def nodes(self) -> range:
        """The node-id range ``0 .. n_nodes-1``."""
        return range(self._n_nodes)

    def __len__(self) -> int:
        return self._n_nodes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SocialGraph(n_nodes={self._n_nodes}, n_edges={self.n_edges})"

    def _check_node(self, node: int) -> int:
        node = int(node)
        if not 0 <= node < self._n_nodes:
            raise NodeNotFoundError(node, self._n_nodes)
        return node

    def validate_node(self, node: int) -> int:
        """Return *node* as an ``int``, checking it is a valid node id.

        Raises
        ------
        NodeNotFoundError
            If *node* is outside ``0 .. n_nodes-1``.
        """
        return self._check_node(node)

    def validate_nodes(self, nodes: Iterable[int]) -> np.ndarray:
        """Validate a batch of node ids in one vectorized range check.

        Returns the ids as an ``int64`` array in input order (duplicates
        preserved); raises :class:`~repro.exceptions.NodeNotFoundError`
        naming the first offending id.
        """
        arr = np.asarray(
            nodes if isinstance(nodes, np.ndarray) else list(nodes),
            dtype=np.int64,
        )
        if arr.ndim != 1:
            arr = arr.reshape(-1)
        if arr.size:
            out_of_range = (arr < 0) | (arr >= self._n_nodes)
            if out_of_range.any():
                bad = int(arr[int(np.argmax(out_of_range))])
                raise NodeNotFoundError(bad, self._n_nodes)
        return arr

    # ------------------------------------------------------------------
    # Adjacency access
    # ------------------------------------------------------------------
    def out_neighbors(self, node: int) -> np.ndarray:
        """Targets of out-edges of *node* (read-only view, sorted)."""
        node = self._check_node(node)
        return self._out_targets[self._out_indptr[node] : self._out_indptr[node + 1]]

    def out_edges(self, node: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(targets, probabilities)`` arrays for the out-edges of *node*."""
        node = self._check_node(node)
        lo, hi = self._out_indptr[node], self._out_indptr[node + 1]
        return self._out_targets[lo:hi], self._out_probs[lo:hi]

    def in_neighbors(self, node: int) -> np.ndarray:
        """Sources of in-edges of *node* (read-only view, sorted)."""
        node = self._check_node(node)
        return self._in_sources[self._in_indptr[node] : self._in_indptr[node + 1]]

    def in_edges(self, node: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(sources, probabilities)`` arrays for the in-edges of *node*."""
        node = self._check_node(node)
        lo, hi = self._in_indptr[node], self._in_indptr[node + 1]
        return self._in_sources[lo:hi], self._in_probs[lo:hi]

    def out_degree(self, node: int) -> int:
        """Number of out-edges of *node*."""
        node = self._check_node(node)
        return int(self._out_indptr[node + 1] - self._out_indptr[node])

    def in_degree(self, node: int) -> int:
        """Number of in-edges of *node*."""
        node = self._check_node(node)
        return int(self._in_indptr[node + 1] - self._in_indptr[node])

    def out_degrees(self) -> np.ndarray:
        """Out-degree of every node as an ``int64`` array."""
        return np.diff(self._out_indptr)

    def in_degrees(self) -> np.ndarray:
        """In-degree of every node as an ``int64`` array."""
        return np.diff(self._in_indptr)

    def total_degrees(self) -> np.ndarray:
        """Sum of in- and out-degree per node (used for degree sampling)."""
        return self.out_degrees() + self.in_degrees()

    def has_edge(self, source: int, target: int) -> bool:
        """Whether the directed edge ``source -> target`` exists."""
        try:
            self.edge_probability(source, target)
        except EdgeError:
            return False
        return True

    def edge_probability(self, source: int, target: int) -> float:
        """Transition probability of ``source -> target``.

        Raises
        ------
        EdgeError
            If the edge does not exist.
        """
        source = self._check_node(source)
        target = self._check_node(target)
        if self._edge_lookup is None:
            self._edge_lookup = {
                (int(s), int(t)): float(p) for s, t, p in self.iter_edges()
            }
        try:
            return self._edge_lookup[(source, target)]
        except KeyError:
            raise EdgeError(f"no edge {source} -> {target}") from None

    def iter_edges(self) -> Iterator[Edge]:
        """Yield every edge as ``(source, target, probability)``."""
        for node in range(self._n_nodes):
            lo, hi = self._out_indptr[node], self._out_indptr[node + 1]
            for j in range(lo, hi):
                yield node, int(self._out_targets[j]), float(self._out_probs[j])

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def transition_matrix(self):
        """The graph as a ``scipy.sparse.csr_matrix`` ``P`` with ``P[u, v] = Λ(u, v)``.

        Used by the BaseMatrix baseline and by spectral checks in tests.
        """
        from scipy.sparse import csr_matrix

        indptr = self._out_indptr.copy()
        return csr_matrix(
            (self._out_probs.copy(), self._out_targets.copy(), indptr),
            shape=(self._n_nodes, self._n_nodes),
        )

    def reversed(self) -> "SocialGraph":
        """A new graph with every edge direction flipped (same probabilities)."""
        return SocialGraph(
            self._n_nodes,
            ((t, s, p) for s, t, p in self.iter_edges()),
        )

    def subgraph(self, nodes: Sequence[int]) -> Tuple["SocialGraph", np.ndarray]:
        """Induced subgraph on *nodes*.

        Returns
        -------
        (graph, mapping):
            *graph* has nodes relabelled ``0 .. len(nodes)-1``; *mapping* is
            an array whose ``i``-th entry is the original id of new node ``i``.
        """
        mapping = np.asarray(sorted({self._check_node(v) for v in nodes}), dtype=np.int64)
        inverse = {int(old): new for new, old in enumerate(mapping)}
        edges: List[Edge] = []
        for old in mapping:
            targets, probs = self.out_edges(int(old))
            for t, p in zip(targets, probs):
                if int(t) in inverse:
                    edges.append((inverse[int(old)], inverse[int(t)], float(p)))
        return SocialGraph(mapping.size, edges), mapping

    def memory_bytes(self) -> int:
        """Approximate resident size of the CSR arrays, in bytes."""
        arrays = (
            self._out_indptr,
            self._out_targets,
            self._out_probs,
            self._in_indptr,
            self._in_sources,
            self._in_probs,
        )
        return int(sum(a.nbytes for a in arrays))

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def average_degree(self) -> float:
        """Mean out-degree; raises on the empty graph."""
        if self._n_nodes == 0:
            raise EmptyGraphError("average_degree of an empty graph is undefined")
        return self.n_edges / self._n_nodes

    def degree_histogram(self) -> Dict[int, int]:
        """Mapping ``out_degree -> node count``."""
        values, counts = np.unique(self.out_degrees(), return_counts=True)
        return {int(v): int(c) for v, c in zip(values, counts)}
