"""Incremental construction of :class:`~repro.graph.digraph.SocialGraph`.

The builder collects edges (deduplicating and validating as it goes) and
freezes them into an immutable CSR graph with :meth:`GraphBuilder.build`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from ..exceptions import EdgeError
from .digraph import Edge, SocialGraph

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Mutable accumulator for graph edges.

    Parameters
    ----------
    n_nodes:
        Optional fixed node count. When omitted, the node count grows to
        ``max(endpoint) + 1`` as edges are added.

    Examples
    --------
    >>> builder = GraphBuilder()
    >>> builder.add_edge(0, 1, 0.5)
    >>> builder.add_edge(1, 2, 0.25)
    >>> graph = builder.build()
    >>> graph.n_nodes, graph.n_edges
    (3, 2)
    """

    def __init__(self, n_nodes: Optional[int] = None):
        if n_nodes is not None and n_nodes < 0:
            raise EdgeError(f"n_nodes must be non-negative, got {n_nodes}")
        self._fixed_n = n_nodes
        self._max_node = -1
        self._edges: Dict[Tuple[int, int], float] = {}

    # ------------------------------------------------------------------
    @property
    def n_edges(self) -> int:
        """Number of distinct edges added so far."""
        return len(self._edges)

    @property
    def n_nodes(self) -> int:
        """Current node count (fixed, or inferred from edges seen so far)."""
        if self._fixed_n is not None:
            return self._fixed_n
        return self._max_node + 1

    def add_edge(self, source: int, target: int, probability: float) -> None:
        """Add the directed edge ``source -> target``.

        Re-adding an existing edge with the same probability is a no-op;
        with a different probability it is an error (silent overwrites hide
        generator bugs).
        """
        source, target = int(source), int(target)
        probability = float(probability)
        if source == target:
            raise EdgeError(f"self-loop on node {source} is not allowed")
        if source < 0 or target < 0:
            raise EdgeError("edge endpoints must be non-negative node ids")
        if not 0.0 < probability <= 1.0:
            raise EdgeError(
                f"transition probability must be in (0, 1], got {probability!r}"
            )
        if self._fixed_n is not None and max(source, target) >= self._fixed_n:
            raise EdgeError(
                f"edge ({source}, {target}) outside fixed node count {self._fixed_n}"
            )
        key = (source, target)
        existing = self._edges.get(key)
        if existing is not None and existing != probability:
            raise EdgeError(
                f"edge ({source}, {target}) already added with probability "
                f"{existing}, refusing to overwrite with {probability}"
            )
        self._edges[key] = probability
        self._max_node = max(self._max_node, source, target)

    def add_edges(self, edges: Iterable[Edge]) -> None:
        """Add many ``(source, target, probability)`` triples."""
        for source, target, probability in edges:
            self.add_edge(source, target, probability)

    def has_edge(self, source: int, target: int) -> bool:
        """Whether ``source -> target`` has been added."""
        return (int(source), int(target)) in self._edges

    def discard_edge(self, source: int, target: int) -> bool:
        """Remove an edge if present; returns whether it existed."""
        return self._edges.pop((int(source), int(target)), None) is not None

    def build(self) -> SocialGraph:
        """Freeze the accumulated edges into an immutable graph."""
        n = self.n_nodes
        return SocialGraph(
            n, ((s, t, p) for (s, t), p in sorted(self._edges.items()))
        )
