"""Graph substrate: weighted digraph, generators, traversal, sampling, IO.

See DESIGN.md systems S1-S5. The central type is
:class:`~repro.graph.digraph.SocialGraph`.
"""

from .builder import GraphBuilder
from .connectivity import (
    ensure_weakly_connected,
    is_weakly_connected,
    weakly_connected_components,
)
from .digraph import Edge, SocialGraph
from .generators import (
    PROBABILITY_SCHEMES,
    assign_probabilities,
    banded_degree_graph,
    preferential_attachment_graph,
)
from .io import load_edge_list, load_npz, save_edge_list, save_npz
from .metrics import (
    average_clustering_coefficient,
    degree_summary,
    gini_coefficient,
    power_law_tail_exponent,
    reciprocity,
)
from .sampling import (
    sample_nodes_by_degree,
    sample_nodes_uniform,
    sample_rate_to_count,
)
from .traversal import (
    forward_closure,
    theta_forward_closure,
    forward_reachable,
    hop_distance,
    hop_distance_matrix,
    hop_distances,
    pairwise_hop_distances,
    reachability_bitsets,
    reverse_hop_distances,
    reverse_reachable,
    unpack_bitset,
)

__all__ = [
    "Edge",
    "SocialGraph",
    "GraphBuilder",
    "preferential_attachment_graph",
    "banded_degree_graph",
    "assign_probabilities",
    "PROBABILITY_SCHEMES",
    "weakly_connected_components",
    "is_weakly_connected",
    "ensure_weakly_connected",
    "sample_nodes_by_degree",
    "sample_nodes_uniform",
    "sample_rate_to_count",
    "forward_closure",
    "theta_forward_closure",
    "forward_reachable",
    "reverse_reachable",
    "hop_distances",
    "reverse_hop_distances",
    "hop_distance",
    "pairwise_hop_distances",
    "reachability_bitsets",
    "hop_distance_matrix",
    "unpack_bitset",
    "save_edge_list",
    "load_edge_list",
    "save_npz",
    "load_npz",
    "reciprocity",
    "power_law_tail_exponent",
    "gini_coefficient",
    "average_clustering_coefficient",
    "degree_summary",
]
