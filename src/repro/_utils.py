"""Small internal helpers shared across the library.

These are implementation details; nothing here is part of the public API.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

import numpy as np

from .exceptions import ConfigurationError

#: The types accepted wherever the library needs randomness.
SeedLike = Union[None, int, np.random.Generator]


def coerce_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    Accepts ``None`` (fresh entropy), an ``int`` seed, or an existing
    generator (returned unchanged so callers can share a stream).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_entropy(seed: SeedLike = None) -> int:
    """Draw one 63-bit entropy value from *seed*.

    Used to freeze a summarizer's randomness at construction time so that
    per-topic generators can later be derived independently of the order
    (or process) in which topics are summarized. Passing a shared
    :class:`~numpy.random.Generator` advances it by exactly one draw.
    """
    return int(coerce_rng(seed).integers(0, 2**63))


def derive_topic_rng(entropy: int, topic_id: int) -> np.random.Generator:
    """A generator keyed on ``(entropy, topic_id)``.

    Summarizing topic 7 consumes the same variates whether it runs first,
    last, serially, or in a worker process - the property that makes
    parallel multi-topic builds byte-identical to serial ones.
    """
    return np.random.default_rng(
        np.random.SeedSequence([int(entropy), int(topic_id)])
    )


def require_positive(name: str, value: float) -> None:
    """Raise :class:`ConfigurationError` unless ``value > 0``."""
    if not value > 0:
        raise ConfigurationError(f"{name} must be positive, got {value!r}")


def require_non_negative(name: str, value: float) -> None:
    """Raise :class:`ConfigurationError` unless ``value >= 0``."""
    if value < 0:
        raise ConfigurationError(f"{name} must be non-negative, got {value!r}")


def require_probability(name: str, value: float, *, inclusive_zero: bool = True) -> None:
    """Raise :class:`ConfigurationError` unless *value* lies in [0, 1].

    With ``inclusive_zero=False`` the admissible interval is (0, 1].
    """
    low_ok = value >= 0 if inclusive_zero else value > 0
    if not (low_ok and value <= 1):
        bounds = "[0, 1]" if inclusive_zero else "(0, 1]"
        raise ConfigurationError(f"{name} must be in {bounds}, got {value!r}")


def require_in_range(name: str, value: int, low: int, high: Optional[int] = None) -> None:
    """Raise :class:`ConfigurationError` unless ``low <= value`` (``<= high``)."""
    if value < low or (high is not None and value > high):
        hi = "inf" if high is None else str(high)
        raise ConfigurationError(f"{name} must be in [{low}, {hi}], got {value!r}")


def as_int_array(values: Iterable[int]) -> np.ndarray:
    """Materialize *values* as a contiguous ``int64`` array."""
    arr = np.asarray(list(values) if not isinstance(values, (np.ndarray, list)) else values,
                     dtype=np.int64)
    return np.ascontiguousarray(arr)


def stable_top_indices(scores: Sequence[float], count: int) -> np.ndarray:
    """Indices of the *count* largest scores, ties broken by smaller index.

    Sorting is fully deterministic, which keeps experiments reproducible even
    when many candidates share a score.
    """
    arr = np.asarray(scores, dtype=np.float64)
    count = min(count, arr.size)
    if count <= 0:
        return np.empty(0, dtype=np.int64)
    # argsort on (-score, index) via stable mergesort on negated scores.
    order = np.argsort(-arr, kind="stable")
    return order[:count].astype(np.int64)


def normalize_rows(matrix: np.ndarray) -> np.ndarray:
    """Return a row-normalized copy of *matrix*; all-zero rows stay zero."""
    matrix = np.asarray(matrix, dtype=np.float64)
    sums = matrix.sum(axis=1, keepdims=True)
    safe = np.where(sums == 0.0, 1.0, sums)
    return matrix / safe
