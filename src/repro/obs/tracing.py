"""Span-based phase tracing with nested wall-time attribution.

``with trace("propagation.build_entry", node=v):`` opens a *span*: a
named, attributed slice of wall time. Spans nest; when one closes it
records a structured :class:`TraceEvent` carrying

* ``seconds`` - its total wall time, and
* ``self_seconds`` - wall time *not* covered by child spans, the number
  that answers "where did the time actually go" in a nested pipeline
  (e.g. how much of ``summarize.rcl`` was grouping vs. centroid
  selection);

and feeds its duration into a ``phase.<name>.seconds`` histogram on a
:class:`~repro.obs.registry.MetricsRegistry` - the span log is the
*shape* of one run, the histogram is the *distribution* across runs.

Spans are identified by ids assigned when they open (children close
before their parents, so log positions cannot express the tree); every
event carries its own ``span_id`` and its ``parent_id``, from which
consumers reconstruct the call tree regardless of close order.

The event log is bounded (:attr:`Tracer.max_events`): a 2M-entry offline
build must not grow an unbounded list, so beyond the cap only the
histogram timing survives and :attr:`Tracer.n_dropped` counts the rest.

A process-wide default :class:`Tracer` backs the module-level
:func:`trace`; pass ``registry=`` to route a span's histogram into a
specific registry (components with an explicit ``metrics=`` handle do
this), otherwise the process-wide default registry receives it.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, Iterator, List, Optional, Tuple

from .registry import MetricsRegistry, get_registry

__all__ = ["TraceEvent", "Tracer", "get_tracer", "set_tracer", "trace"]


@dataclass(frozen=True)
class TraceEvent:
    """One completed span.

    Attributes
    ----------
    name:
        Span name (dotted phase path, e.g. ``"propagation.build_all"``).
    span_id / parent_id:
        Ids assigned at span open; ``parent_id`` is -1 for root spans.
    start:
        ``perf_counter()`` timestamp when the span opened (monotonic;
        only differences between events of one process are meaningful).
    seconds:
        Total wall time of the span.
    self_seconds:
        Wall time not attributed to any child span.
    depth:
        Nesting depth (0 = root span).
    attrs:
        The keyword attributes passed to :func:`trace`.
    """

    name: str
    span_id: int
    parent_id: int
    start: float
    seconds: float
    self_seconds: float
    depth: int
    attrs: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready payload."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "seconds": self.seconds,
            "self_seconds": self.self_seconds,
            "depth": self.depth,
            "attrs": dict(self.attrs),
        }


class Tracer:
    """Collects :class:`TraceEvent` records from nested :func:`trace` spans.

    Parameters
    ----------
    max_events:
        Event-log capacity; completed spans beyond it are counted in
        :attr:`n_dropped` instead of stored (their histogram timings are
        still recorded). ``0`` keeps no log at all.
    """

    def __init__(self, max_events: int = 10_000):
        if max_events < 0:
            raise ValueError(f"max_events must be >= 0, got {max_events}")
        self.max_events = int(max_events)
        self.events: List[TraceEvent] = []
        self.n_dropped = 0
        self._next_id = 0
        # Open-span stack: [span_id, start, child_seconds].
        self._stack: List[List[float]] = []

    @contextmanager
    def trace(
        self,
        name: str,
        *,
        registry: Optional[MetricsRegistry] = None,
        **attrs: Any,
    ) -> Iterator[None]:
        """Open a span; on close, log the event and observe the duration.

        The duration lands in the histogram ``phase.<name>.seconds`` of
        *registry* (default: the process-wide registry at close time).
        """
        span_id = self._next_id
        self._next_id += 1
        parent_id = int(self._stack[-1][0]) if self._stack else -1
        frame: List[float] = [span_id, perf_counter(), 0.0]
        self._stack.append(frame)
        try:
            yield
        finally:
            seconds = perf_counter() - frame[1]
            stack = self._stack
            stack.pop()
            if stack:
                stack[-1][2] += seconds
            if len(self.events) < self.max_events:
                self.events.append(TraceEvent(
                    name=name,
                    span_id=span_id,
                    parent_id=parent_id,
                    start=frame[1],
                    seconds=seconds,
                    self_seconds=max(0.0, seconds - frame[2]),
                    depth=len(stack),
                    attrs=attrs,
                ))
            else:
                self.n_dropped += 1
            target = registry if registry is not None else get_registry()
            target.observe(f"phase.{name}.seconds", seconds)

    def clear(self) -> None:
        """Drop the event log (open spans are unaffected)."""
        self.events.clear()
        self.n_dropped = 0

    def phase_totals(self) -> Dict[str, Tuple[int, float, float]]:
        """``name -> (count, total seconds, total self seconds)``."""
        totals: Dict[str, Tuple[int, float, float]] = {}
        for event in self.events:
            count, seconds, self_seconds = totals.get(event.name, (0, 0.0, 0.0))
            totals[event.name] = (
                count + 1,
                seconds + event.seconds,
                self_seconds + event.self_seconds,
            )
        return totals

    def as_dicts(self) -> List[Dict[str, Any]]:
        """The whole event log as JSON-ready dicts."""
        return [event.as_dict() for event in self.events]


_tracer = Tracer()


def get_tracer() -> Tracer:
    """The process-wide default tracer."""
    return _tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Replace the process-wide tracer; returns the previous one."""
    global _tracer
    previous = _tracer
    _tracer = tracer
    return previous


def trace(
    name: str,
    *,
    registry: Optional[MetricsRegistry] = None,
    **attrs: Any,
):
    """Open a span on the process-wide tracer (see :meth:`Tracer.trace`)."""
    return _tracer.trace(name, registry=registry, **attrs)
