"""Observability: metrics registry, phase tracing, exporters.

Dependency-free instrumentation for the three hot layers of the stack -
offline propagation builds, topic summarization, and online serving:

* :mod:`repro.obs.registry` - process-wide counters, gauges, and
  fixed-bucket latency histograms cheap enough to stay enabled, plus a
  :class:`NullRegistry` no-op for benchmark baselines.
* :mod:`repro.obs.tracing` - ``with trace("phase", ...)`` spans with
  nested wall-time attribution, feeding ``phase.<name>.seconds``
  histograms.
* :mod:`repro.obs.export` - snapshots as JSON (``repro.metrics/v1``),
  Prometheus text exposition, or human tables; backs ``pit-search
  stats`` and ``--metrics-out``.

See ``docs/observability.md`` for the metric catalogue.
"""

from .export import (
    SCHEMA,
    prometheus_name,
    render_prometheus,
    render_table,
    snapshot_to_json,
    validate_metrics_json,
    write_metrics_files,
)
from .registry import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
    NullRegistry,
    get_registry,
    null_registry,
    set_registry,
    use_registry,
)
from .tracing import TraceEvent, Tracer, get_tracer, set_tracer, trace

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NullRegistry",
    "SCHEMA",
    "TraceEvent",
    "Tracer",
    "get_registry",
    "get_tracer",
    "null_registry",
    "prometheus_name",
    "render_prometheus",
    "render_table",
    "set_registry",
    "set_tracer",
    "snapshot_to_json",
    "trace",
    "use_registry",
    "validate_metrics_json",
    "write_metrics_files",
]
