"""Exporters: registry snapshots as JSON, Prometheus text, or a table.

Three consumers, one snapshot:

* **JSON** (``snapshot_to_json`` / ``write_metrics_files``) - the
  machine-readable schema behind ``--metrics-out`` and ``pit-search
  stats``; validated by :func:`validate_metrics_json`, which is also
  what CI runs against the emitted file.
* **Prometheus text format** (``render_prometheus``) - counters, gauges
  and cumulative-bucket histograms ready for a scraper; see
  ``docs/observability.md`` for wiring one up.
* **Table** (``render_table``) - the human rendering used by the CLI's
  default output.

Metric names inside the registry are dotted (``search.latency_seconds``)
- Prometheus names are derived by prefixing ``repro_`` and mapping every
non-alphanumeric run to ``_``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from .registry import MetricsSnapshot

__all__ = [
    "SCHEMA",
    "prometheus_name",
    "render_prometheus",
    "render_table",
    "snapshot_to_json",
    "validate_metrics_json",
    "write_metrics_files",
]

#: Schema tag stamped into (and required from) every JSON payload.
SCHEMA = "repro.metrics/v1"

PathLike = Union[str, Path]


def snapshot_to_json(snapshot: MetricsSnapshot) -> Dict[str, object]:
    """The canonical JSON payload of one snapshot."""
    payload = snapshot.as_dict()
    payload["schema"] = SCHEMA
    return payload


def validate_metrics_json(payload: Dict[str, object]) -> None:
    """Check *payload* against the exporter schema; raise ``ValueError``.

    Verifies the schema tag, the three top-level sections, numeric
    counter/gauge values, and the internal consistency of every
    histogram (bucket ordering, counts length, count totals, percentile
    fields present). CI runs this over the ``--metrics-out`` file.
    """
    if not isinstance(payload, dict):
        raise ValueError(f"metrics payload must be an object, got {type(payload)}")
    if payload.get("schema") != SCHEMA:
        raise ValueError(
            f"metrics payload schema is {payload.get('schema')!r}, "
            f"expected {SCHEMA!r}"
        )
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(payload.get(section), dict):
            raise ValueError(f"metrics payload is missing the {section!r} map")
    for section in ("counters", "gauges"):
        for name, value in payload[section].items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValueError(f"{section}[{name!r}] is not a number: {value!r}")
    for name, histogram in payload["histograms"].items():
        if not isinstance(histogram, dict):
            raise ValueError(f"histograms[{name!r}] is not an object")
        for key in ("buckets", "counts", "count", "sum",
                    "max", "min", "mean", "p50", "p90", "p99"):
            if key not in histogram:
                raise ValueError(f"histograms[{name!r}] is missing {key!r}")
        buckets = histogram["buckets"]
        counts = histogram["counts"]
        if sorted(buckets) != list(buckets):
            raise ValueError(f"histograms[{name!r}] buckets are not sorted")
        if len(counts) != len(buckets) + 1:
            raise ValueError(
                f"histograms[{name!r}] has {len(counts)} counts for "
                f"{len(buckets)} buckets (expected buckets + 1)"
            )
        if sum(counts) != histogram["count"]:
            raise ValueError(
                f"histograms[{name!r}] counts sum to {sum(counts)}, "
                f"count says {histogram['count']}"
            )
        if histogram["count"] > 0 and histogram["p50"] is None:
            raise ValueError(
                f"histograms[{name!r}] is non-empty but has no percentiles"
            )


def prometheus_name(name: str) -> str:
    """Dotted registry name -> Prometheus metric name (``repro_`` prefix)."""
    sanitized = "".join(
        c if c.isalnum() else "_" for c in name
    ).strip("_")
    while "__" in sanitized:
        sanitized = sanitized.replace("__", "_")
    return f"repro_{sanitized}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    formatted = repr(float(value))
    return formatted[:-2] if formatted.endswith(".0") else formatted


def render_prometheus(snapshot: MetricsSnapshot) -> str:
    """Prometheus exposition text (version 0.0.4) for one snapshot.

    Histograms render as cumulative ``_bucket{le=...}`` series plus
    ``_sum`` and ``_count``, exactly what ``histogram_quantile`` expects.
    """
    lines: List[str] = []
    for name in sorted(snapshot.counters):
        metric = prometheus_name(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(snapshot.counters[name])}")
    for name in sorted(snapshot.gauges):
        metric = prometheus_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(snapshot.gauges[name])}")
    for name in sorted(snapshot.histograms):
        histogram = snapshot.histograms[name]
        metric = prometheus_name(name)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(histogram.buckets, histogram.counts):
            cumulative += count
            lines.append(
                f'{metric}_bucket{{le="{_format_value(bound)}"}} {cumulative}'
            )
        lines.append(f'{metric}_bucket{{le="+Inf"}} {histogram.count}')
        lines.append(f"{metric}_sum {_format_value(histogram.sum)}")
        lines.append(f"{metric}_count {histogram.count}")
    return "\n".join(lines) + "\n"


def render_table(snapshot: MetricsSnapshot, title: str = "Metrics"):
    """Human rendering: one counters/gauges table, one histogram table.

    Returns a list of :class:`~repro.evaluation.reporting.Table` objects
    (imported lazily to keep :mod:`repro.obs` dependency-free).
    """
    from ..evaluation.reporting import Table

    tables = []
    scalars = Table(f"{title} - counters & gauges", ["metric", "kind", "value"])
    for name in sorted(snapshot.counters):
        scalars.add_row([name, "counter", f"{snapshot.counters[name]:g}"])
    for name in sorted(snapshot.gauges):
        scalars.add_row([name, "gauge", f"{snapshot.gauges[name]:g}"])
    tables.append(scalars)
    if snapshot.histograms:
        histograms = Table(
            f"{title} - histograms",
            ["metric", "count", "mean", "p50", "p90", "p99", "max"],
        )
        for name in sorted(snapshot.histograms):
            h = snapshot.histograms[name]
            if h.count == 0:
                histograms.add_row([name, 0, "-", "-", "-", "-", "-"])
                continue
            histograms.add_row([
                name, h.count,
                f"{h.mean:.6f}", f"{h.p50:.6f}", f"{h.p90:.6f}",
                f"{h.p99:.6f}", f"{h.max:.6f}",
            ])
        tables.append(histograms)
    return tables


def write_metrics_files(
    snapshot: MetricsSnapshot,
    json_path: PathLike,
    *,
    prom_path: Optional[PathLike] = None,
) -> Path:
    """Write the JSON payload to *json_path* and Prometheus text beside it.

    The Prometheus file defaults to *json_path* with a ``.prom`` suffix.
    Returns the Prometheus path. This is what ``--metrics-out`` does.
    """
    json_path = Path(json_path)
    payload = snapshot_to_json(snapshot)
    validate_metrics_json(payload)  # never publish an invalid artifact
    json_path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    prom = Path(prom_path) if prom_path is not None else (
        json_path.with_suffix(".prom")
    )
    prom.write_text(render_prometheus(snapshot), encoding="utf-8")
    return prom
