"""Process-wide metrics registry: counters, gauges, latency histograms.

The serving north-star needs the preprocessing-vs-query-time accounting
that real-time influence systems treat as a first-class output: how long
each offline phase took, what the per-search latency distribution looks
like, and how the bounded caches are behaving - *while the process is
serving*, not only in a post-hoc benchmark.

Design constraints, in order:

1. **Cheap enough to stay enabled.** Every event is one dict lookup plus
   a float add (counters/gauges) or a ``bisect`` into a fixed bucket
   table (histograms). No locks, no allocation on the hot path after the
   first event of a metric.
2. **Dependency-free.** Snapshots are plain dataclasses; exporters (see
   :mod:`repro.obs.export`) turn them into JSON or Prometheus text.
3. **Disableable without branches at call sites.** :class:`NullRegistry`
   subclasses :class:`MetricsRegistry` with every mutator a no-op, so
   benchmarks can swap it in (``null_registry()``) and measure the true
   instrumentation overhead - which
   ``benchmarks/bench_online_search.py`` gates at < 5%.

Percentiles (p50/p90/p99/max) are *derived from snapshots*, not tracked
online: a histogram stores fixed-bucket counts and exact ``sum``/``max``
/``min``, and :meth:`HistogramSnapshot.quantile` interpolates within the
bucket that holds the requested rank. That keeps observation O(log
buckets) and makes snapshots mergeable and exportable.

A process-wide default registry backs every component that is not given
an explicit one (:func:`get_registry` / :func:`set_registry` /
:func:`use_registry`), so the CLI, the engine, and the benchmarks all
read one coherent picture by default.
"""

from __future__ import annotations

from bisect import bisect_left
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, Iterator, Mapping, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NullRegistry",
    "get_registry",
    "null_registry",
    "set_registry",
    "use_registry",
]

#: Default histogram bucket upper bounds, in seconds. Spans 50µs..10s,
#: roughly x2.5 per step - wide enough for both a 2k-node laptop search
#: (~100µs-10ms) and a cold offline build phase (seconds).
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


@dataclass(frozen=True)
class HistogramSnapshot:
    """Immutable point-in-time state of one fixed-bucket histogram.

    Attributes
    ----------
    buckets:
        Finite bucket upper bounds; an implicit ``+Inf`` bucket follows.
    counts:
        Per-bucket observation counts, ``len(buckets) + 1`` long (the
        last slot is the overflow bucket).
    count / sum / max / min:
        Exact aggregate statistics over every observation.
    """

    buckets: Tuple[float, ...]
    counts: Tuple[int, ...]
    count: int
    sum: float
    max: float
    min: float

    def quantile(self, q: float) -> float:
        """The *q*-quantile (0 <= q <= 1), interpolated within its bucket.

        Returns ``nan`` for an empty histogram. Ranks that land in the
        overflow bucket return the exact observed :attr:`max` - the
        snapshot cannot do better, and ``max`` is a truthful upper bound.
        """
        if self.count == 0:
            return float("nan")
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        rank = q * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= rank and bucket_count:
                if i >= len(self.buckets):
                    return self.max
                lower = self.buckets[i - 1] if i else max(0.0, self.min)
                upper = self.buckets[i]
                fraction = (rank - previous) / bucket_count
                value = lower + (upper - lower) * min(1.0, max(0.0, fraction))
                # Never report beyond the exact observed extremes.
                return float(min(max(value, self.min), self.max))
        return self.max

    @property
    def p50(self) -> float:
        """Median latency, derived from the bucket counts."""
        return self.quantile(0.50)

    @property
    def p90(self) -> float:
        """90th percentile, derived from the bucket counts."""
        return self.quantile(0.90)

    @property
    def p99(self) -> float:
        """99th percentile, derived from the bucket counts."""
        return self.quantile(0.99)

    @property
    def mean(self) -> float:
        """Exact mean over every observation (nan when empty)."""
        if self.count == 0:
            return float("nan")
        return self.sum / self.count

    def delta(self, earlier: "HistogramSnapshot") -> "HistogramSnapshot":
        """Observations recorded after *earlier* (same bucket layout)."""
        if earlier.buckets != self.buckets:
            raise ValueError("cannot diff histograms with different buckets")
        return HistogramSnapshot(
            buckets=self.buckets,
            counts=tuple(
                now - before for now, before in zip(self.counts, earlier.counts)
            ),
            count=self.count - earlier.count,
            sum=self.sum - earlier.sum,
            # max/min of the delta window are not derivable exactly; the
            # lifetime extremes remain truthful bounds.
            max=self.max,
            min=self.min,
        )

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready payload including the derived percentiles."""
        empty = self.count == 0
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "max": None if empty else self.max,
            "min": None if empty else self.min,
            "mean": None if empty else self.mean,
            "p50": None if empty else self.p50,
            "p90": None if empty else self.p90,
            "p99": None if empty else self.p99,
        }


class Histogram:
    """Mutable fixed-bucket histogram (internal to the registry)."""

    __slots__ = ("buckets", "counts", "count", "total", "max", "min")

    def __init__(self, buckets: Sequence[float]):
        ordered = tuple(float(b) for b in buckets)
        if not ordered or list(ordered) != sorted(set(ordered)):
            raise ValueError(
                f"histogram buckets must be strictly increasing, got {buckets!r}"
            )
        self.buckets = ordered
        self.counts = [0] * (len(ordered) + 1)
        self.count = 0
        self.total = 0.0
        self.max = float("-inf")
        self.min = float("inf")

    def observe(self, value: float) -> None:
        """Record one observation (O(log buckets))."""
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value
        if value < self.min:
            self.min = value

    def snapshot(self) -> HistogramSnapshot:
        return HistogramSnapshot(
            buckets=self.buckets,
            counts=tuple(self.counts),
            count=self.count,
            sum=self.total,
            max=self.max if self.count else 0.0,
            min=self.min if self.count else 0.0,
        )


@dataclass(frozen=True)
class MetricsSnapshot:
    """Immutable point-in-time state of a whole registry."""

    counters: Mapping[str, float] = field(default_factory=dict)
    gauges: Mapping[str, float] = field(default_factory=dict)
    histograms: Mapping[str, HistogramSnapshot] = field(default_factory=dict)

    def counter(self, name: str, default: float = 0.0) -> float:
        """Value of one counter (``default`` when never incremented)."""
        return self.counters.get(name, default)

    def gauge(self, name: str, default: float = 0.0) -> float:
        """Value of one gauge (``default`` when never set)."""
        return self.gauges.get(name, default)

    def histogram(self, name: str) -> Optional[HistogramSnapshot]:
        """Snapshot of one histogram, or ``None``."""
        return self.histograms.get(name)

    def delta(self, earlier: "MetricsSnapshot") -> "MetricsSnapshot":
        """Activity between *earlier* and this snapshot.

        Counters subtract; histograms diff bucket-wise; gauges keep their
        latest value (a gauge has no meaningful difference). Metrics that
        did not exist in *earlier* are taken whole. This is how per-call
        accounting (e.g. one ``build_all``'s
        :class:`~repro.core.diagnostics.PropagationBuildStats`) is viewed
        out of the cumulative process-wide registry.
        """
        counters = {
            name: value - earlier.counters.get(name, 0.0)
            for name, value in self.counters.items()
        }
        histograms = {}
        for name, now in self.histograms.items():
            before = earlier.histograms.get(name)
            histograms[name] = now if before is None else now.delta(before)
        return MetricsSnapshot(
            counters=counters, gauges=dict(self.gauges), histograms=histograms
        )

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready nested-dict payload (see :mod:`repro.obs.export`)."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: h.as_dict() for name, h in self.histograms.items()
            },
        }


class MetricsRegistry:
    """Named counters, gauges, and fixed-bucket histograms.

    All mutators are safe to call with never-before-seen names (metrics
    are created on first touch) and cost one dict operation plus a float
    update. ``snapshot()`` is the only place aggregate state is
    assembled, so the hot path never builds intermediate objects.
    """

    #: Whether events are actually recorded (False on NullRegistry);
    #: lets callers skip building expensive label/context values.
    enabled: bool = True

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- mutators ------------------------------------------------------
    def inc(self, name: str, value: float = 1.0) -> None:
        """Add *value* (default 1) to the counter *name*."""
        counters = self._counters
        counters[name] = counters.get(name, 0.0) + value

    def set_gauge(self, name: str, value: float) -> None:
        """Set the gauge *name* to *value* (last write wins)."""
        self._gauges[name] = float(value)

    def observe(
        self,
        name: str,
        value: float,
        *,
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        """Record *value* into the histogram *name*.

        *buckets* fixes the bucket bounds on first touch (default:
        :data:`DEFAULT_LATENCY_BUCKETS`); later calls ignore it.
        """
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = Histogram(
                DEFAULT_LATENCY_BUCKETS if buckets is None else buckets
            )
            self._histograms[name] = histogram
        histogram.observe(value)

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Context manager observing its wall time into histogram *name*."""
        start = perf_counter()
        try:
            yield
        finally:
            self.observe(name, perf_counter() - start)

    # -- introspection -------------------------------------------------
    def snapshot(self) -> MetricsSnapshot:
        """An immutable copy of every metric's current state."""
        return MetricsSnapshot(
            counters=dict(self._counters),
            gauges=dict(self._gauges),
            histograms={
                name: h.snapshot() for name, h in self._histograms.items()
            },
        )

    def counter_value(self, name: str) -> float:
        """Current value of one counter (0.0 when never incremented)."""
        return self._counters.get(name, 0.0)

    def clear(self) -> None:
        """Drop every metric (tests and long-lived processes)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)


class NullRegistry(MetricsRegistry):
    """A registry that records nothing - for benchmark baselines.

    Every mutator is an explicit no-op (not merely an empty registry:
    nothing is allocated, snapshots are always empty), so code
    instrumented against a registry handle runs at its uninstrumented
    speed. :func:`null_registry` returns a shared instance.
    """

    enabled = False

    def inc(self, name: str, value: float = 1.0) -> None:  # noqa: D102
        pass

    def set_gauge(self, name: str, value: float) -> None:  # noqa: D102
        pass

    def observe(self, name, value, *, buckets=None) -> None:  # noqa: D102
        pass

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:  # noqa: D102
        yield


_NULL = NullRegistry()
_default = MetricsRegistry()


def null_registry() -> NullRegistry:
    """The shared no-op registry (disable instrumentation explicitly)."""
    return _NULL


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _default


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the process-wide default; returns the previous one."""
    global _default
    previous = _default
    _default = registry
    return previous


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Scope the process-wide default to *registry* (tests, benchmarks)."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
