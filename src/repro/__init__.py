"""repro - reproduction of "Personalized Influential Topic Search via Social
Network Summarization" (Li et al., ICDE/TKDE 2017).

The package implements the paper's full stack:

* :mod:`repro.graph` - weighted social digraph substrate and generators.
* :mod:`repro.walks` - random-walk engine and the Algorithm 6 walk index.
* :mod:`repro.topics` - tweets, LDA, tags, topic space and inverted index.
* :mod:`repro.core` - the paper's contribution: RCL-A and LRW-A social
  summarizers, the personalized propagation index, and top-k PIT-Search.
* :mod:`repro.baselines` - BaseMatrix, BaseDijkstra, BasePropagation.
* :mod:`repro.datasets` - synthetic dataset bundles and query workloads.
* :mod:`repro.evaluation` - metrics, timing and the per-figure experiments.
* :mod:`repro.obs` - metrics registry, phase tracing, and exporters.

Quickstart::

    from repro import PITEngine, datasets

    bundle = datasets.data_2k(seed=7)
    engine = PITEngine.from_dataset(bundle, summarizer="lrw")
    results = engine.search(user=3, query="phone", k=5)
"""

from __future__ import annotations

from .exceptions import (
    ArtifactCorruptedError,
    ArtifactError,
    BudgetExceededError,
    BuildFailedError,
    ConfigurationError,
    DatasetError,
    EdgeError,
    EmptyGraphError,
    GraphError,
    IndexNotBuiltError,
    NodeNotFoundError,
    QueryError,
    ReproError,
    TopicError,
    UnknownTopicError,
)

__version__ = "1.1.0"

__all__ = [
    "__version__",
    "ReproError",
    "GraphError",
    "NodeNotFoundError",
    "EdgeError",
    "EmptyGraphError",
    "TopicError",
    "UnknownTopicError",
    "QueryError",
    "IndexNotBuiltError",
    "ConfigurationError",
    "BudgetExceededError",
    "BuildFailedError",
    "DatasetError",
    "ArtifactError",
    "ArtifactCorruptedError",
]


def __getattr__(name):
    """Lazy re-exports of the heavyweight public entry points.

    Keeps ``import repro`` cheap while still allowing
    ``from repro import PITEngine``.
    """
    if name == "PITEngine":
        from .core.engine import PITEngine

        return PITEngine
    if name in {"graph", "walks", "topics", "core", "baselines", "datasets",
                "evaluation", "obs"}:
        import importlib

        return importlib.import_module(f".{name}", __name__)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
