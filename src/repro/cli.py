"""Command-line interface (S32): ``pit-search <command>``.

Commands
--------
``datasets``
    Print the Figure 4 dataset summary for the bundled scaled analogues.
``search``
    Build a dataset + engine and answer one PIT-Search query, or serve a
    JSONL workload of many requests (``--batch``) through the batched
    query-serving layer, reporting QPS and cache hit rates.
``build-index``
    Pre-build the full §5.1 propagation index (optionally in parallel)
    and persist it to an ``.npz`` for reuse by ``search --index``. The
    build checkpoints periodically (``--checkpoint-every``) and can pick
    up an interrupted run with ``--resume``; see ``docs/operations.md``.
    With ``--shard-nodes N``, ``--output`` names a *directory* instead:
    the build streams completed node-range shards to disk (bounded RSS,
    shard-granularity resume) for ``search --index-dir``.
``build-summaries``
    Pre-build the per-topic summaries (§3 RCL-A or §4 LRW-A), optionally
    in parallel, and persist them as a checksummed JSON artifact for
    audit or warm-start. Checkpoints and ``--resume`` work exactly like
    ``build-index``; parallel builds are byte-identical to serial ones.
``serve``
    Run the resilient serving daemon over prebuilt artifacts: a
    dependency-free asyncio HTTP/JSON server with admission control,
    per-request deadlines, request coalescing, hot artifact reload
    (``POST /admin/reload`` / SIGHUP), and graceful SIGTERM drain. See
    ``docs/operations.md`` ("Serving").
``stats``
    Run a small seeded demo workload end-to-end and emit its metrics
    snapshot - offline build phase timings, per-search latency
    percentiles, cache hit-ratio gauges - as JSON (default), Prometheus
    text, or a table (see ``docs/observability.md``).
``experiment``
    Run one of the per-figure experiments and print its table.

``search``, ``build-index``, and ``build-summaries`` accept
``--metrics-out PATH`` to write the invocation's metrics snapshot as
JSON at PATH plus Prometheus text at the ``.prom`` sibling.

Library errors (:class:`~repro.exceptions.ReproError`) surface as a
one-line ``pit-search: error: ...`` message on stderr with exit code 2,
never a traceback. Interrupts follow the shell convention ``128 +
signum`` after flushing any checkpoint: SIGINT exits 130, SIGTERM 143
(both run the same cleanup path). The ``serve`` daemon overrides this
with its graceful drain: SIGTERM drains and exits 0, SIGINT exits 130.

Examples
--------
::

    pit-search datasets --size 800
    pit-search build-index --dataset data_2k --workers 4 --output prop.npz \
        --checkpoint-every 500 --resume
    pit-search build-index --dataset data_2k --shard-nodes 4096 \
        --output prop_shards/ --resume
    pit-search search --dataset data_2k --user 3 --query phone --k 5 \
        --index prop.npz
    pit-search search --dataset data_2k --user 3 --query phone --k 5 \
        --index-dir prop_shards/ --shard-cache-mb 64
    pit-search search --dataset data_2k --batch workload.jsonl --k 5
    pit-search build-summaries --dataset data_2k --summarizer rcl \
        --workers 2 --output summaries.json --resume
    pit-search experiment --figure 5 --queries 2 --users 1
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .evaluation import ExperimentConfig, ExperimentSuite
from .exceptions import DatasetError, ReproError

__all__ = ["main", "build_parser"]

DATASET_NAMES = ("data_2k", "data_350k", "data_1.2m", "data_3m")

#: Figure id -> ExperimentSuite method name.
FIGURES = {
    "4": "fig04_datasets",
    "5": "fig05_time_small",
    "6": "fig06_time_large",
    "7": "fig07_repnodes_time",
    "8": "fig08_scalability",
    "9": "fig09_scalability_double_reps",
    "10": "fig10_effectiveness_small",
    "11": "fig11_effectiveness_large",
    "12": "fig12_repnodes_precision",
    "15": "fig15_index_construction",
    "16": "fig16_construction_vs_length",
}


def build_parser() -> argparse.ArgumentParser:
    """The argparse CLI definition (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="pit-search",
        description="Personalized Influential Topic Search (paper reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    datasets = sub.add_parser(
        "datasets", help="print the Figure 4 dataset summary"
    )
    datasets.add_argument("--size", type=int, default=None,
                          help="override node count for every dataset")
    datasets.add_argument("--seed", type=int, default=42)

    search = sub.add_parser(
        "search", help="run one PIT-Search query (or a --batch workload)"
    )
    search.add_argument("--dataset", default="data_2k", metavar="NAME",
                        help=f"one of {', '.join(DATASET_NAMES)}")
    search.add_argument("--size", type=int, default=None)
    search.add_argument("--user", type=int, default=None,
                        help="query user (required unless --batch)")
    search.add_argument("--query", default=None,
                        help="keyword query (required unless --batch)")
    search.add_argument("--batch", default=None, metavar="PATH",
                        help="serve a JSONL workload instead of one query: "
                             'one {"user": ..., "query": ..., "k": ...} '
                             "object per line (k optional)")
    search.add_argument("--k", type=int, default=10)
    search.add_argument("--summarizer", default="lrw", choices=["lrw", "rcl"])
    search.add_argument("--theta", type=float, default=0.002)
    search.add_argument("--index", default=None, metavar="PATH",
                        help="reuse a propagation index built by build-index "
                             "(its theta overrides --theta)")
    search.add_argument("--index-dir", default=None, metavar="DIR",
                        help="serve from a sharded index directory built by "
                             "build-index --shard-nodes (zero-copy mmap; its "
                             "theta overrides --theta)")
    search.add_argument("--shard-cache-mb", type=int, default=256,
                        metavar="MB",
                        help="paging budget for resident shard segments "
                             "with --index-dir (default 256)")
    search.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="write this invocation's metrics snapshot as "
                             "JSON at PATH (+ Prometheus text at the .prom "
                             "sibling)")
    search.add_argument("--seed", type=int, default=42)

    build_index = sub.add_parser(
        "build-index",
        help="pre-build and persist the propagation index",
    )
    build_index.add_argument("--dataset", default="data_2k", metavar="NAME",
                             help=f"one of {', '.join(DATASET_NAMES)}")
    build_index.add_argument("--size", type=int, default=None)
    build_index.add_argument("--theta", type=float, default=0.002)
    build_index.add_argument("--max-branches", type=int, default=200_000)
    build_index.add_argument("--workers", type=int, default=1,
                             help="worker processes (0 = all CPUs)")
    build_index.add_argument("--output", required=True, metavar="PATH",
                             help="destination .npz file (or directory "
                                  "with --shard-nodes)")
    build_index.add_argument("--shard-nodes", type=int, default=None,
                             metavar="N",
                             help="stream the index to --output as shards "
                                  "of N contiguous nodes instead of one "
                                  "NPZ: bounded RSS, per-shard checksums, "
                                  "shard-granularity --resume")
    build_index.add_argument("--checkpoint", default=None, metavar="PATH",
                             help="checkpoint file (default: <output stem>"
                                  ".ckpt.npz next to --output)")
    build_index.add_argument("--checkpoint-every", type=int, default=1000,
                             metavar="N",
                             help="flush completed entries to the checkpoint "
                                  "every N entries (0 = only on exit)")
    build_index.add_argument("--resume", action="store_true",
                             help="resume from an existing checkpoint "
                                  "instead of rebuilding from scratch")
    build_index.add_argument("--max-retries", type=int, default=2,
                             metavar="N",
                             help="fresh-process retries for crashed workers")
    build_index.add_argument("--keep-going", action="store_true",
                             help="record nodes that still fail after the "
                                  "retries and continue instead of aborting")
    build_index.add_argument("--metrics-out", default=None, metavar="PATH",
                             help="write the build's metrics snapshot as "
                                  "JSON at PATH (+ Prometheus text at the "
                                  ".prom sibling)")
    build_index.add_argument("--seed", type=int, default=42)

    build_summaries = sub.add_parser(
        "build-summaries",
        help="pre-build and persist the per-topic summaries",
    )
    build_summaries.add_argument("--dataset", default="data_2k",
                                 metavar="NAME",
                                 help=f"one of {', '.join(DATASET_NAMES)}")
    build_summaries.add_argument("--size", type=int, default=None)
    build_summaries.add_argument("--summarizer", default="lrw",
                                 choices=["lrw", "rcl"])
    build_summaries.add_argument("--walk-length", type=int, default=5,
                                 help="walk index L (also the BFS hop bound)")
    build_summaries.add_argument("--samples-per-node", type=int, default=25,
                                 help="walk index R")
    build_summaries.add_argument("--rep-fraction", type=float, default=0.1,
                                 help="representatives per topic as a "
                                      "fraction of |V_t|")
    build_summaries.add_argument("--sample-rate", type=float, default=0.05,
                                 help="RCL-A node sampling rate (ignored "
                                      "for lrw)")
    build_summaries.add_argument("--workers", type=int, default=1,
                                 help="worker processes (0 = all CPUs)")
    build_summaries.add_argument("--output", required=True, metavar="PATH",
                                 help="destination .json artifact")
    build_summaries.add_argument("--checkpoint", default=None, metavar="PATH",
                                 help="checkpoint file (default: <output "
                                      "stem>.ckpt.json next to --output)")
    build_summaries.add_argument("--checkpoint-every", type=int, default=16,
                                 metavar="N",
                                 help="flush completed summaries to the "
                                      "checkpoint every N topics (0 = only "
                                      "on exit)")
    build_summaries.add_argument("--resume", action="store_true",
                                 help="resume from an existing checkpoint "
                                      "instead of rebuilding from scratch")
    build_summaries.add_argument("--max-retries", type=int, default=2,
                                 metavar="N",
                                 help="fresh-process retries for crashed "
                                      "workers")
    build_summaries.add_argument("--keep-going", action="store_true",
                                 help="record topics that still fail after "
                                      "the retries and continue instead of "
                                      "aborting")
    build_summaries.add_argument("--metrics-out", default=None,
                                 metavar="PATH",
                                 help="write the build's metrics snapshot "
                                      "as JSON at PATH (+ Prometheus text "
                                      "at the .prom sibling)")
    build_summaries.add_argument("--seed", type=int, default=42)

    diagnose = sub.add_parser(
        "diagnose", help="print summary diagnostics for a query's topics"
    )
    diagnose.add_argument("--dataset", default="data_2k", metavar="NAME",
                          help=f"one of {', '.join(DATASET_NAMES)}")
    diagnose.add_argument("--size", type=int, default=None)
    diagnose.add_argument("--query", required=True)
    diagnose.add_argument("--summarizer", default="lrw", choices=["lrw", "rcl"])
    diagnose.add_argument("--with-error", action="store_true",
                          help="also compute the Definition 1 L1 error")
    diagnose.add_argument("--seed", type=int, default=42)

    serve = sub.add_parser(
        "serve",
        help="run the HTTP/JSON serving daemon over prebuilt artifacts",
    )
    serve.add_argument("--dataset", default="data_2k", metavar="NAME",
                       help=f"one of {', '.join(DATASET_NAMES)}")
    serve.add_argument("--size", type=int, default=None)
    serve.add_argument("--seed", type=int, default=42)
    serve.add_argument("--summaries", required=True, metavar="PATH",
                       help="prebuilt summaries artifact (build-summaries)")
    serve.add_argument("--index", default=None, metavar="PATH",
                       help="prebuilt propagation index .npz (build-index)")
    serve.add_argument("--index-dir", default=None, metavar="DIR",
                       help="sharded propagation index directory "
                            "(build-index --shard-nodes)")
    serve.add_argument("--shard-cache-mb", type=int, default=256, metavar="MB",
                       help="paging budget for resident shard segments "
                            "with --index-dir (default 256)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080,
                       help="listen port (0 = pick a free port)")
    serve.add_argument("--k", type=int, default=10,
                       help="default k for requests that send none")
    serve.add_argument("--theta", type=float, default=0.002,
                       help="theta for lazy propagation when no --index[-dir] "
                            "is given (a prebuilt index's theta governs)")
    serve.add_argument("--max-queue", type=int, default=64, metavar="N",
                       help="admission capacity; excess requests are shed "
                            "with 429 (default 64)")
    serve.add_argument("--max-batch", type=int, default=8, metavar="N",
                       help="max requests coalesced per dispatch (default 8)")
    serve.add_argument("--default-deadline-ms", type=int, default=5000,
                       metavar="MS",
                       help="per-request deadline when the caller sends no "
                            "deadline_ms (default 5000)")
    serve.add_argument("--drain-seconds", type=float, default=10.0,
                       metavar="S",
                       help="SIGTERM waits this long for in-flight requests "
                            "before hard-cancelling (default 10)")
    serve.add_argument("--max-body-kb", type=int, default=64, metavar="KB",
                       help="request bodies above this are refused with 413")
    serve.add_argument("--entry-cache-mb", type=int, default=64, metavar="MB",
                       help="bounded propagation-entry cache (default 64)")
    serve.add_argument("--summary-cache-mb", type=int, default=8, metavar="MB",
                       help="bounded summary-array cache (default 8)")
    serve.add_argument("--answer-cache-mb", type=int, default=32, metavar="MB",
                       help="answer-tier byte budget; 0 disables the tier "
                            "(default 32)")
    serve.add_argument("--plan-cache-mb", type=int, default=128, metavar="MB",
                       help="compiled-plan tier byte budget (default 128)")
    serve.add_argument("--precompute", default=None, metavar="PATH",
                       help="precompute artifact (pit-search precompute) to "
                            "warm the plan and answer tiers from, at startup "
                            "and across reloads")

    precompute = sub.add_parser(
        "precompute",
        help="mine a workload trace and precompute head-query plans and "
             "heavy-hitter answers into a warm-load artifact",
    )
    precompute.add_argument("--dataset", default="data_2k", metavar="NAME",
                            help=f"one of {', '.join(DATASET_NAMES)}")
    precompute.add_argument("--size", type=int, default=None)
    precompute.add_argument("--seed", type=int, default=42)
    precompute.add_argument("--summaries", required=True, metavar="PATH",
                            help="prebuilt summaries artifact the daemon "
                                 "will serve")
    precompute.add_argument("--index", default=None, metavar="PATH",
                            help="prebuilt propagation index .npz")
    precompute.add_argument("--index-dir", default=None, metavar="DIR",
                            help="sharded propagation index directory")
    precompute.add_argument("--shard-cache-mb", type=int, default=256,
                            metavar="MB")
    precompute.add_argument("--theta", type=float, default=0.002,
                            help="theta for lazy propagation when no "
                                 "--index[-dir] is given")
    precompute.add_argument("--trace", required=True, metavar="PATH",
                            help="JSONL workload trace "
                                 "({'user','query','k'} records, the "
                                 "search --batch / replay format)")
    precompute.add_argument("--output", required=True, metavar="PATH",
                            help="where to write the precompute artifact")
    precompute.add_argument("--top-queries", type=int, default=64, metavar="N",
                            help="head query plans to precompile (default 64)")
    precompute.add_argument("--top-answers", type=int, default=256,
                            metavar="N",
                            help="heavy-hitter answers to precompute "
                                 "(default 256)")
    precompute.add_argument("--k", type=int, default=10,
                            help="k for trace records that carry none")
    precompute.add_argument("--metrics-out", default=None, metavar="PATH",
                            help="write a metrics JSON snapshot (+ .prom "
                                 "sibling) for the precompute run")

    stats = sub.add_parser(
        "stats",
        help="run a seeded demo workload and emit its metrics snapshot",
    )
    stats.add_argument("--dataset", default="data_2k", metavar="NAME",
                       help=f"one of {', '.join(DATASET_NAMES)}")
    stats.add_argument("--size", type=int, default=300,
                       help="node count of the demo graph (default 300)")
    stats.add_argument("--queries", type=int, default=4,
                       help="distinct keyword queries in the demo workload")
    stats.add_argument("--users", type=int, default=5,
                       help="query users in the demo workload")
    stats.add_argument("--k", type=int, default=5)
    stats.add_argument("--summarizer", default="lrw", choices=["lrw", "rcl"])
    stats.add_argument("--theta", type=float, default=0.002)
    stats.add_argument("--index-dir", default=None, metavar="DIR",
                       help="serve the demo from a sharded index directory "
                            "(skips the in-process index build; surfaces "
                            "the index.shard.* gauges)")
    stats.add_argument("--shard-cache-mb", type=int, default=256,
                       metavar="MB",
                       help="paging budget for resident shard segments "
                            "with --index-dir (default 256)")
    stats.add_argument("--format", default="json",
                       choices=["json", "prom", "table"],
                       help="stdout rendering of the snapshot")
    stats.add_argument("--output", default=None, metavar="PATH",
                       help="also write JSON at PATH + Prometheus text at "
                            "the .prom sibling")
    stats.add_argument("--seed", type=int, default=42)

    experiment = sub.add_parser(
        "experiment", help="run a per-figure experiment"
    )
    experiment.add_argument("--figure", required=True, choices=sorted(FIGURES))
    experiment.add_argument("--queries", type=int, default=2)
    experiment.add_argument("--users", type=int, default=2)
    experiment.add_argument("--size", type=int, default=None,
                            help="override node count for every dataset")
    experiment.add_argument("--seed", type=int, default=42)

    scenario = sub.add_parser(
        "scenario",
        help="replayable, oracle-gated workload scenarios "
             "(see docs/scenarios.md)",
    )
    scenario_sub = scenario.add_subparsers(
        dest="scenario_command", required=True
    )
    scenario_sub.add_parser("list", help="print the scenario catalogue")
    generate = scenario_sub.add_parser(
        "generate",
        help="emit a scenario's replay trace (the JSONL format "
             "search --batch, serve, and precompute consume)",
    )
    generate.add_argument("name", help="scenario name (see: scenario list)")
    generate.add_argument("--seed", type=int, default=None,
                          help="override the scenario's default seed")
    generate.add_argument("--profile", default="default",
                          help="size profile (default / smoke / ...)")
    generate.add_argument("--output", required=True, metavar="PATH",
                          help="trace JSONL destination")
    run = scenario_sub.add_parser(
        "run",
        help="generate, replay, and grade one scenario "
             "(deterministic report in engine mode)",
    )
    run.add_argument("name", help="scenario name (see: scenario list)")
    run.add_argument("--seed", type=int, default=None,
                     help="override the scenario's default seed")
    run.add_argument("--profile", default="default",
                     help="size profile (default / smoke / ...)")
    run.add_argument("--mode", default="engine",
                     choices=["engine", "daemon"],
                     help="replay through ServingEngine in process "
                          "(deterministic) or a live daemon on a "
                          "loopback socket")
    run.add_argument("--metrics-out", default=None, metavar="PATH",
                     help="write the full report JSON at PATH")
    run.add_argument("--workdir", default=None, metavar="DIR",
                     help="keep artifacts in DIR instead of a temp dir")
    return parser


def _suite(args, sizes: Optional[dict] = None) -> ExperimentSuite:
    config = ExperimentConfig(
        seed=args.seed,
        n_queries=getattr(args, "queries", 2),
        n_users=getattr(args, "users", 2),
        deviation_budget=120,
        dataset_sizes=sizes or {},
    )
    return ExperimentSuite(config)


def _sizes_for(args) -> dict:
    if getattr(args, "size", None) is None:
        return {}
    return {name: args.size
            for name in ("data_2k", "data_350k", "data_1.2m", "data_3m")}


def _run_datasets(args) -> int:
    suite = _suite(args, _sizes_for(args))
    print(suite.fig04_datasets().render())
    return 0


def _load_bundle(args):
    from .datasets import DATASETS

    try:
        factory = DATASETS[args.dataset]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {args.dataset!r}; "
            f"available: {', '.join(sorted(DATASETS))}"
        ) from None
    kwargs = {}
    if getattr(args, "size", None) is not None:
        kwargs["n_nodes"] = args.size
    if args.dataset == "data_2k":
        kwargs["with_corpus"] = False
    return factory(seed=args.seed, **kwargs)


def _load_workload(path: str):
    """Parse a JSONL batch workload into ``[(user, query, k or None)]``."""
    import json

    from .exceptions import ConfigurationError

    requests = []
    try:
        lines = Path(path).read_text().splitlines()
    except OSError as exc:
        raise ConfigurationError(f"cannot read workload {path}: {exc}") from None
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
            user = int(record["user"])
            query = record["query"]
            k = record.get("k")
        except (ValueError, KeyError, TypeError) as exc:
            raise ConfigurationError(
                f"{path}:{lineno}: bad workload record ({exc}); expected "
                '{"user": ..., "query": ..., "k": ...} per line'
            ) from None
        requests.append((user, str(query), None if k is None else int(k)))
    if not requests:
        raise ConfigurationError(f"workload {path} contains no requests")
    return requests


def _run_batch(args, engine) -> int:
    from time import perf_counter

    requests = _load_workload(args.batch)
    # Group by k so each group is one search_many call; requests without
    # their own k use --k. Input order is restored for the report.
    by_k = {}
    for position, (user, query, k) in enumerate(requests):
        by_k.setdefault(k if k is not None else args.k, []).append(
            (position, user, query)
        )
    outcomes = [None] * len(requests)
    start = perf_counter()
    for k, group in sorted(by_k.items()):
        answered = engine.search_batch(
            [(user, query) for _, user, query in group], k=k, with_stats=True
        )
        for (position, _, _), outcome in zip(group, answered):
            outcomes[position] = outcome
    elapsed = perf_counter() - start

    n_empty = 0
    for (user, query, k), (results, stats) in zip(requests, outcomes):
        if results:
            top = results[0]
            print(f"user={user} query={query!r}: {len(results)} topics, "
                  f"top {top.label} ({top.influence:.6f}), "
                  f"{stats.topics_pruned}/{stats.topics_considered} pruned")
        else:
            n_empty += 1
            print(f"user={user} query={query!r}: no matching topics")
    qps = len(requests) / elapsed if elapsed > 0 else float("inf")
    print(f"\nserved {len(requests)} requests in {elapsed:.3f}s "
          f"({qps:.1f} QPS, {n_empty} empty)")
    for cache in engine.cache_stats():
        print(f"cache {cache.name}: {cache.hits} hits / {cache.misses} misses "
              f"(hit rate {cache.hit_rate:.1%}), {cache.n_items} items, "
              f"{cache.current_bytes / 1024:.1f} KiB")
    return 0


def _emit_metrics(snapshot, path: str) -> None:
    from .obs import write_metrics_files

    prom = write_metrics_files(snapshot, path)
    print(f"metrics written to {path} and {prom}")


def _run_search(args) -> int:
    from .core import PITEngine, load_propagation_index, load_sharded_index
    from .exceptions import ConfigurationError

    if args.batch is None and (args.user is None or args.query is None):
        raise ConfigurationError(
            "search needs --user and --query (or --batch for a workload)"
        )
    if args.index is not None and args.index_dir is not None:
        raise ConfigurationError(
            "--index and --index-dir are mutually exclusive"
        )
    bundle = _load_bundle(args)
    print(bundle.describe())
    metrics = None
    if args.metrics_out is not None:
        # A private registry scopes the emitted snapshot to this
        # invocation (the process default would do too, but could carry
        # metrics from other library use in the same process).
        from .obs import MetricsRegistry

        metrics = MetricsRegistry()
    engine = PITEngine.from_dataset(
        bundle,
        summarizer=args.summarizer,
        theta=args.theta,
        seed=args.seed,
        # Batch serving gets bounded caches so the report can show hit
        # rates and resident bytes; one-shot queries keep the unbounded
        # default.
        entry_cache_bytes=64 << 20 if args.batch else None,
        summary_cache_bytes=8 << 20 if args.batch else None,
        metrics=metrics,
    )
    if args.index is not None:
        prebuilt = load_propagation_index(args.index, bundle.graph)
        engine.use_propagation_index(prebuilt)
        print(f"using prebuilt propagation index {args.index} "
              f"({prebuilt.n_cached} entries, theta={prebuilt.theta})")
    elif args.index_dir is not None:
        prebuilt = load_sharded_index(
            args.index_dir, bundle.graph,
            cache_bytes=args.shard_cache_mb << 20,
        )
        engine.use_propagation_index(prebuilt)
        shards = prebuilt.shards
        print(f"using sharded propagation index {args.index_dir} "
              f"({prebuilt.n_cached} entries, {shards.n_shards} shards, "
              f"{shards.mapped_bytes() / (1 << 20):.1f} MiB mapped, "
              f"theta={prebuilt.theta}, "
              f"cache budget {args.shard_cache_mb} MiB)")
    if args.batch is not None:
        code = _run_batch(args, engine)
        if args.metrics_out is not None:
            _emit_metrics(engine.metrics_snapshot(), args.metrics_out)
        return code
    results, stats = engine.search(
        args.user, args.query, k=args.k, with_stats=True
    )
    if args.metrics_out is not None:
        _emit_metrics(engine.metrics_snapshot(), args.metrics_out)
    if not results:
        print(f"no topics match query {args.query!r}")
        return 1
    print(f"\nTop-{args.k} topics for user {args.user} / query {args.query!r} "
          f"({stats.topics_considered} candidates, "
          f"{stats.topics_pruned} pruned):")
    for rank, result in enumerate(results, start=1):
        print(f"  {rank:2d}. {result.label:28s} {result.influence:.6f}")
    return 0


def _default_checkpoint(output: str, suffix: str = ".npz") -> Path:
    path = Path(output)
    stem = path.name[: -len(suffix)] if path.name.endswith(suffix) else path.name
    return path.with_name(stem + ".ckpt" + suffix)


def _run_build_index(args) -> int:
    from .core import PropagationIndex, save_propagation_index

    bundle = _load_bundle(args)
    print(bundle.describe())
    workers = None if args.workers == 0 else args.workers
    checkpoint = (
        Path(args.checkpoint) if args.checkpoint
        else _default_checkpoint(args.output)
    )
    metrics = None
    if args.metrics_out is not None:
        from .obs import MetricsRegistry

        metrics = MetricsRegistry()
    index = PropagationIndex(
        bundle.graph, args.theta, max_branches=args.max_branches,
        metrics=metrics,
    )
    if args.shard_nodes is not None:
        return _finish_build_sharded(args, index, workers, metrics)
    index.build_all(
        workers=workers,
        checkpoint=checkpoint,
        checkpoint_every=args.checkpoint_every,
        resume=args.resume,
        max_retries=args.max_retries,
        strict=not args.keep_going,
    )
    save_propagation_index(index, args.output)
    stats = index.last_build_stats
    if stats.n_resumed:
        print(f"resumed {stats.n_resumed} entries from {checkpoint}")
    print(f"built {stats.n_built} entries in {stats.wall_seconds:.2f}s "
          f"({stats.entries_per_second:.0f} entries/s, "
          f"{stats.workers} worker(s), "
          f"{stats.total_bytes / 1024:.1f} KiB) -> {args.output}")
    if stats.failed_nodes:
        print(f"warning: {stats.n_failed} entries failed to build and were "
              f"skipped: {list(stats.failed_nodes)[:10]}", file=sys.stderr)
    if metrics is not None:
        metrics.set_gauge("propagation.entries_cached", index.n_cached)
        metrics.set_gauge("propagation.index_bytes", index.memory_bytes())
        _emit_metrics(metrics.snapshot(), args.metrics_out)
    # The finished artifact is saved; the checkpoint is now redundant.
    checkpoint.unlink(missing_ok=True)
    return 0


def _finish_build_sharded(args, index, workers, metrics) -> int:
    """The ``build-index --shard-nodes`` tail: stream shards to a directory.

    The manifest doubles as the checkpoint (rewritten after every shard),
    so the NPZ checkpoint flags do not apply and nothing needs deleting
    on success.
    """
    index.build_sharded(
        args.output,
        shard_nodes=args.shard_nodes,
        workers=workers,
        resume=args.resume,
        max_retries=args.max_retries,
        strict=not args.keep_going,
    )
    stats = index.last_build_stats
    if stats.n_resumed:
        print(f"resumed {stats.n_resumed} entries "
              f"(completed shards verified and kept)")
    print(f"built {stats.n_built} entries in {stats.wall_seconds:.2f}s "
          f"({stats.entries_per_second:.0f} entries/s, "
          f"{stats.workers} worker(s), "
          f"{stats.total_bytes / 1024:.1f} KiB in shards of "
          f"{args.shard_nodes} nodes) -> {args.output}")
    if stats.failed_nodes:
        print(f"warning: {stats.n_failed} entries failed to build and were "
              f"stored empty: {list(stats.failed_nodes)[:10]}",
              file=sys.stderr)
    if metrics is not None:
        metrics.set_gauge("propagation.entries_cached", index.n_cached)
        metrics.set_gauge("propagation.index_bytes", index.memory_bytes())
        _emit_metrics(metrics.snapshot(), args.metrics_out)
    return 0


def _run_build_summaries(args) -> int:
    from .core import PITEngine, save_summaries

    bundle = _load_bundle(args)
    print(bundle.describe())
    workers = None if args.workers == 0 else args.workers
    checkpoint = (
        Path(args.checkpoint) if args.checkpoint
        else _default_checkpoint(args.output, ".json")
    )
    metrics = None
    if args.metrics_out is not None:
        from .obs import MetricsRegistry

        metrics = MetricsRegistry()
    engine = PITEngine.from_dataset(
        bundle,
        summarizer=args.summarizer,
        walk_length=args.walk_length,
        samples_per_node=args.samples_per_node,
        rep_fraction=args.rep_fraction,
        sample_rate=args.sample_rate,
        seed=args.seed,
        metrics=metrics,
    )
    engine.build_summaries(
        workers=workers,
        checkpoint=checkpoint,
        checkpoint_every=args.checkpoint_every,
        resume=args.resume,
        max_retries=args.max_retries,
        strict=not args.keep_going,
    )
    save_summaries(engine.summaries, bundle.graph, args.output)
    stats = engine.last_summary_build_stats
    if stats.n_resumed:
        print(f"resumed {stats.n_resumed} summaries from {checkpoint}")
    print(f"built {stats.n_built} summaries in {stats.wall_seconds:.2f}s "
          f"({stats.topics_per_second:.1f} topics/s, "
          f"{stats.workers} worker(s), "
          f"{engine.n_summaries} total) -> {args.output}")
    if stats.failed_topics:
        print(f"warning: {stats.n_failed} summaries failed to build and "
              f"were skipped: {list(stats.failed_topics)[:10]}",
              file=sys.stderr)
    if metrics is not None:
        metrics.set_gauge("summaries.cached", engine.n_summaries)
        _emit_metrics(metrics.snapshot(), args.metrics_out)
    # The finished artifact is saved; the checkpoint is now redundant.
    checkpoint.unlink(missing_ok=True)
    return 0


def _run_diagnose(args) -> int:
    from .core import PITEngine, diagnostics_table

    bundle = _load_bundle(args)
    engine = PITEngine.from_dataset(
        bundle, summarizer=args.summarizer, seed=args.seed
    )
    topics = bundle.topic_index.related_topics(args.query)
    if not topics:
        print(f"no topics match query {args.query!r}")
        return 1
    summaries = [engine.summary(t) for t in topics]
    table = diagnostics_table(
        bundle.graph, bundle.topic_index, summaries,
        compute_error=args.with_error,
    )
    print(table.render())
    return 0


def _run_stats(args) -> int:
    import json

    from .core import PITEngine
    from .datasets import generate_workload
    from .obs import (
        MetricsRegistry,
        render_prometheus,
        render_table,
        snapshot_to_json,
    )

    bundle = _load_bundle(args)
    registry = MetricsRegistry()
    engine = PITEngine.from_dataset(
        bundle,
        summarizer=args.summarizer,
        theta=args.theta,
        seed=args.seed,
        entry_cache_bytes=64 << 20,
        summary_cache_bytes=8 << 20,
        metrics=registry,
    )
    # The demo exercises all three instrumented layers: an offline index
    # build, summarization on first use of each topic, and batched online
    # serving over a seeded workload.
    if args.index_dir is not None:
        from .core import load_sharded_index

        engine.use_propagation_index(load_sharded_index(
            args.index_dir, bundle.graph,
            cache_bytes=args.shard_cache_mb << 20,
            metrics=registry,
        ))
    else:
        engine.propagation_index.build_all(workers=1)
    workload = generate_workload(
        bundle, n_queries=args.queries, n_users=args.users, seed=args.seed
    )
    engine.search_batch(list(workload.pairs()), k=args.k)
    snapshot = engine.metrics_snapshot()
    if args.format == "json":
        print(json.dumps(snapshot_to_json(snapshot), indent=2, sort_keys=True))
    elif args.format == "prom":
        print(render_prometheus(snapshot), end="")
    else:
        for table in render_table(snapshot, title=f"{bundle.name} demo"):
            print(table.render())
            print()
    if args.output is not None:
        _emit_metrics(snapshot, args.output)
    return 0


def _run_serve(args) -> int:
    import asyncio

    from .core import ServingEngine
    from .exceptions import ConfigurationError
    from .obs import MetricsRegistry
    from .serve import PITServer, ServeConfig

    if args.index is not None and args.index_dir is not None:
        raise ConfigurationError(
            "--index and --index-dir are mutually exclusive"
        )
    bundle = _load_bundle(args)
    print(bundle.describe(), flush=True)
    registry = MetricsRegistry()
    base = {"summaries": args.summaries}
    if args.index is not None:
        base["index"] = args.index
    if args.index_dir is not None:
        base["index_dir"] = args.index_dir
    if args.precompute is not None:
        base["precompute"] = args.precompute

    def loader(overrides):
        paths = dict(base)
        paths.update(overrides)
        # An override that switches index format replaces, not joins,
        # the configured one.
        if "index" in overrides:
            paths.pop("index_dir", None)
        if "index_dir" in overrides:
            paths.pop("index", None)
        return ServingEngine.from_artifacts(
            bundle.graph,
            bundle.topic_index,
            paths["summaries"],
            index_path=paths.get("index"),
            index_dir=paths.get("index_dir"),
            shard_cache_bytes=args.shard_cache_mb << 20,
            theta=args.theta,
            entry_cache_bytes=args.entry_cache_mb << 20,
            summary_cache_bytes=args.summary_cache_mb << 20,
            answer_cache_bytes=(
                None if args.answer_cache_mb == 0
                else args.answer_cache_mb << 20
            ),
            plan_cache_bytes=args.plan_cache_mb << 20,
            # A precompute built over different summaries/graph is refused
            # (ConfigurationError -> failed reload, old engine keeps
            # serving), so a reload that swaps summaries must swap the
            # precompute path too - or drop it from the configured paths.
            precompute_path=paths.get("precompute"),
            metrics=registry,
        )

    config = ServeConfig(
        host=args.host,
        port=args.port,
        max_queue=args.max_queue,
        max_batch=args.max_batch,
        default_deadline_s=args.default_deadline_ms / 1000.0,
        drain_s=args.drain_seconds,
        max_body_bytes=args.max_body_kb * 1024,
        default_k=args.k,
    )
    server = PITServer(loader, config, metrics=registry)

    def _ready() -> None:
        engine = server.engines.current
        print(f"listening on http://{config.host}:{server.port}", flush=True)
        print(f"ready: generation {server.engines.generation}, "
              f"{engine.n_summaries} summaries, theta={engine.theta}",
              flush=True)

    code = asyncio.run(server.run(ready_callback=_ready))
    print(f"drained and stopped (exit {code})", flush=True)
    return code


def _run_precompute(args) -> int:
    from time import perf_counter

    from .core import ServingEngine
    from .core.precompute import build_precompute, save_precompute
    from .exceptions import ConfigurationError

    if args.index is not None and args.index_dir is not None:
        raise ConfigurationError(
            "--index and --index-dir are mutually exclusive"
        )
    bundle = _load_bundle(args)
    print(bundle.describe())
    metrics = None
    if args.metrics_out is not None:
        from .obs import MetricsRegistry

        metrics = MetricsRegistry()
    engine = ServingEngine.from_artifacts(
        bundle.graph,
        bundle.topic_index,
        args.summaries,
        index_path=args.index,
        index_dir=args.index_dir,
        shard_cache_bytes=args.shard_cache_mb << 20,
        theta=args.theta,
        metrics=metrics,
    )
    started = perf_counter()
    artifact = build_precompute(
        engine,
        args.trace,
        top_queries=args.top_queries,
        top_answers=args.top_answers,
        default_k=args.k,
    )
    save_precompute(artifact, args.output)
    elapsed = perf_counter() - started
    trace = artifact.trace
    print(
        f"mined {trace['n_records']} requests: "
        f"{trace['n_distinct_queries']} distinct queries, "
        f"{trace['n_distinct_triples']} distinct (user, query, k) triples"
    )
    print(
        f"precomputed {len(artifact.plans)} head plans and "
        f"{len(artifact.answers)} answers in {elapsed:.2f}s "
        f"(~{artifact.memory_hint_bytes() / (1 << 20):.2f} MiB warm)"
    )
    print(f"artifact written to {args.output}")
    if metrics is not None:
        metrics.inc("precompute.trace_records", trace["n_records"])
        metrics.set_gauge("precompute.plans", len(artifact.plans))
        metrics.set_gauge("precompute.answers", len(artifact.answers))
        metrics.set_gauge(
            "precompute.warm_bytes", artifact.memory_hint_bytes()
        )
        _emit_metrics(engine.metrics_snapshot(), args.metrics_out)
    return 0


def _run_experiment(args) -> int:
    suite = _suite(args, _sizes_for(args))
    method = getattr(suite, FIGURES[args.figure])
    outcome = method()
    tables = outcome if isinstance(outcome, tuple) else (outcome,)
    for table in tables:
        print(table.render())
        print()
    return 0


def _run_scenario(args) -> int:
    """`pit-search scenario list | generate | run` (docs/scenarios.md)."""
    import json

    from .scenarios import get_scenario, list_scenarios, run_scenario

    if args.scenario_command == "list":
        for scenario in list_scenarios():
            tags = []
            if scenario.adversarial:
                tags.append("adversarial")
            if scenario.wants_precompute:
                tags.append("precompute")
            suffix = f"  [{', '.join(tags)}]" if tags else ""
            profiles = "/".join(sorted(scenario.profiles))
            print(f"{scenario.name:24s} {scenario.title}{suffix}")
            print(f"{'':24s} seed={scenario.default_seed} "
                  f"profiles={profiles}")
        return 0

    if args.scenario_command == "generate":
        data = get_scenario(args.name).generate(args.seed, args.profile)
        data.write_trace(args.output)
        print(f"{args.name}: {len(data.records)} requests, "
              f"{len(data.events)} events -> {args.output}")
        print(f"trace digest: {data.trace_digest()}")
        return 0

    report = run_scenario(
        args.name,
        seed=args.seed,
        profile=args.profile,
        mode=args.mode,
        workdir=args.workdir,
    )
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    trace = report["trace"]
    print(f"{report['scenario']} ({report['mode']}, seed {report['seed']}, "
          f"profile {report['profile']}): {trace['n_requests']} requests "
          f"in {trace['n_bursts']} bursts, {trace['n_events']} events")
    print(f"trace digest: {trace['digest']}")
    quality = report["quality"]
    print(f"quality: exact precision {quality['exact']['precision']:.3f} "
          f"(err {quality['exact']['max_influence_error']:.2e}), "
          f"summarized precision {quality['summarized']['precision']:.3f}")
    if report["replay"] is not None:
        replay = report["replay"]
        cache = replay["answer_cache"]
        print(f"replay: digest {replay['results_digest'][:16]}..., "
              f"answer hits {cache['answer_hits']}/"
              f"{cache['answer_hits'] + cache['answer_misses']}, "
              f"warm {replay['warm_answers']}")
    if report["daemon"] is not None:
        daemon = report["daemon"]
        print(f"daemon: statuses {daemon['statuses']}, "
              f"shed {daemon['shed']}, 5xx {daemon['server_errors']}")
    for name, passed in report["gates"].items():
        print(f"gate {name}: {'pass' if passed else 'FAIL'}")
    print(f"ok: {report['ok']}")
    return 0 if report["ok"] else 1


#: Exit code for the current interrupt, shell-style ``128 + signum``.
#: SIGINT's KeyboardInterrupt leaves the default 130; the SIGTERM
#: handler overwrites it with 143 before raising.
_SIGNAL_EXIT = {"code": 130}


def _signal_to_interrupt(signum, frame) -> None:
    """Route SIGTERM through the KeyboardInterrupt cleanup path.

    Checkpointed builds flush in their ``finally`` blocks on
    KeyboardInterrupt, so terminating a build politely (``kill`` / a
    supervisor's SIGTERM) preserves exactly as much work as Ctrl-C.
    """
    _SIGNAL_EXIT["code"] = 128 + signum
    raise KeyboardInterrupt


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Library failures (missing artifacts, corrupted files, bad
    parameters, failed builds - anything deriving from
    :class:`~repro.exceptions.ReproError`) print a one-line message to
    stderr and exit 2 instead of leaking a traceback. Programming errors
    still traceback, by design. SIGINT/SIGTERM share one cleanup path
    and exit ``128 + signum`` (130 / 143); the ``serve`` daemon installs
    its own loop-level handlers for a graceful drain instead.
    """
    import signal

    args = build_parser().parse_args(argv)
    handlers = {
        "datasets": _run_datasets,
        "search": _run_search,
        "build-index": _run_build_index,
        "build-summaries": _run_build_summaries,
        "diagnose": _run_diagnose,
        "serve": _run_serve,
        "precompute": _run_precompute,
        "stats": _run_stats,
        "experiment": _run_experiment,
        "scenario": _run_scenario,
    }
    _SIGNAL_EXIT["code"] = 130
    try:
        previous_sigterm = signal.signal(signal.SIGTERM, _signal_to_interrupt)
    except ValueError:  # not the main thread (embedded / test harness)
        previous_sigterm = None
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"pit-search: error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # Checkpointed builds have already flushed in their finally block.
        print("pit-search: interrupted (checkpoint flushed if enabled)",
              file=sys.stderr)
        return _SIGNAL_EXIT["code"]
    except BrokenPipeError:
        # Downstream closed the pipe (e.g. `pit-search ... | head`). Point
        # stdout at devnull so interpreter shutdown does not re-raise.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    finally:
        if previous_sigterm is not None:
            try:
                signal.signal(signal.SIGTERM, previous_sigterm)
            except ValueError:
                pass


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
