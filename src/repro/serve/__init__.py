"""Resilient serving daemon for PIT-Search (``pit-search serve``).

A dependency-free asyncio HTTP/JSON front-end over one shared
:class:`~repro.core.serve_facade.ServingEngine`:

* :mod:`repro.serve.protocol` - HTTP framing, validation, typed errors.
* :mod:`repro.serve.admission` - bounded queue, explicit 429 shedding.
* :mod:`repro.serve.coalescer` - same-query batching with isolation.
* :mod:`repro.serve.reload` - validated hot artifact swap, generations.
* :mod:`repro.serve.server` - routes, deadlines, lifecycle, metrics.

See docs/operations.md ("Serving") for the operator runbook and
docs/observability.md for the ``serve.*`` metric catalogue.
"""

from .admission import AdmissionController
from .coalescer import Coalescer, PendingSearch
from .protocol import (
    HttpError,
    SearchRequest,
    parse_reload_request,
    parse_search_request,
)
from .reload import EngineManager
from .server import PITServer, ServeConfig

__all__ = [
    "AdmissionController",
    "Coalescer",
    "EngineManager",
    "HttpError",
    "PITServer",
    "PendingSearch",
    "SearchRequest",
    "ServeConfig",
    "parse_reload_request",
    "parse_search_request",
]
