"""Wire protocol for the serving daemon: HTTP/1.1 framing + typed JSON.

Dependency-free by design (stdlib ``json`` only): the daemon speaks a
minimal, strict subset of HTTP/1.1 - enough for load balancers, health
checkers, Prometheus scrapers, and the replay load generator - and every
body in either direction is JSON.

Two invariants this module enforces for the whole daemon:

* **Errors are typed JSON, never tracebacks.** Every failure becomes
  ``{"error": {"type": ..., "message": ...}}`` with a meaningful status
  code; :func:`error_for_exception` maps the library's
  :class:`~repro.exceptions.ReproError` taxonomy onto statuses (client
  mistakes -> 400, artifact rejection -> 409, everything unexpected ->
  an opaque 500).
* **Inputs are validated before they reach the engine.** Body size is
  bounded before the body is read (413), JSON must parse to an object
  (400 ``MalformedRequest``), and fields are type- and range-checked
  (400 ``ValidationError``) - so the search executor only ever sees
  well-formed requests.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from ..exceptions import (
    ArtifactError,
    ConfigurationError,
    NodeNotFoundError,
    QueryError,
    ReproError,
    UnknownTopicError,
)
from ..topics import KeywordQuery

__all__ = [
    "HttpError",
    "SearchRequest",
    "encode_response",
    "error_body",
    "error_for_exception",
    "parse_delta_request",
    "parse_reload_request",
    "parse_search_request",
    "results_payload",
]

#: Reason phrases for every status the daemon emits.
REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Hard ceiling on requested k (a typo like k=10**9 must not allocate).
MAX_K = 10_000


class HttpError(Exception):
    """A request failure with a definite HTTP status and error type.

    Raised anywhere in the request path and rendered as the typed JSON
    error body; ``retry_after`` adds a ``Retry-After`` header (shedding).
    """

    def __init__(
        self,
        status: int,
        error_type: str,
        message: str,
        *,
        retry_after: Optional[int] = None,
    ):
        super().__init__(message)
        self.status = int(status)
        self.error_type = str(error_type)
        self.message = str(message)
        self.retry_after = retry_after


@dataclass(frozen=True)
class SearchRequest:
    """One validated ``POST /search`` body.

    ``deadline_s`` is the caller's *relative* deadline in seconds
    (``None`` = use the server default); the server converts it to an
    absolute monotonic deadline at admission time.
    """

    user: int
    query: KeywordQuery
    k: int
    deadline_s: Optional[float]


def _load_json_object(body: bytes) -> Dict:
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise HttpError(
            400, "MalformedRequest", f"body is not valid JSON: {exc}"
        ) from None
    if not isinstance(payload, dict):
        raise HttpError(
            400, "MalformedRequest",
            f"body must be a JSON object, got {type(payload).__name__}",
        )
    return payload


def _require_int(payload: Mapping, field: str, *, minimum: int,
                 maximum: Optional[int] = None,
                 default: Optional[int] = None) -> int:
    value = payload.get(field, default)
    if value is None:
        raise HttpError(400, "ValidationError", f"missing field {field!r}")
    if isinstance(value, bool) or not isinstance(value, int):
        raise HttpError(
            400, "ValidationError",
            f"field {field!r} must be an integer, got {value!r}",
        )
    if value < minimum or (maximum is not None and value > maximum):
        bound = f">= {minimum}" if maximum is None else f"in [{minimum}, {maximum}]"
        raise HttpError(
            400, "ValidationError", f"field {field!r} must be {bound}, got {value}"
        )
    return value


def parse_search_request(
    body: bytes, *, default_k: int
) -> SearchRequest:
    """Validate a ``POST /search`` body into a :class:`SearchRequest`.

    Required: ``user`` (int >= 0), ``query`` (non-empty string).
    Optional: ``k`` (int in [1, MAX_K], default *default_k*),
    ``deadline_ms`` (number > 0). Unknown fields are ignored (forward
    compatibility). The query is tokenized here, so an unusable query
    fails with a typed 400 before any engine work.
    """
    payload = _load_json_object(body)
    user = _require_int(payload, "user", minimum=0)
    raw_query = payload.get("query")
    if not isinstance(raw_query, str) or not raw_query:
        raise HttpError(
            400, "ValidationError",
            f"field 'query' must be a non-empty string, got {raw_query!r}",
        )
    k = _require_int(payload, "k", minimum=1, maximum=MAX_K, default=default_k)
    deadline_s: Optional[float] = None
    if payload.get("deadline_ms") is not None:
        deadline_ms = payload["deadline_ms"]
        if isinstance(deadline_ms, bool) or not isinstance(
            deadline_ms, (int, float)
        ):
            raise HttpError(
                400, "ValidationError",
                f"field 'deadline_ms' must be a number, got {deadline_ms!r}",
            )
        if deadline_ms <= 0:
            raise HttpError(
                400, "ValidationError",
                f"field 'deadline_ms' must be > 0, got {deadline_ms}",
            )
        deadline_s = float(deadline_ms) / 1000.0
    try:
        query = KeywordQuery.parse(raw_query)
    except QueryError as exc:
        raise HttpError(400, "QueryError", str(exc)) from None
    return SearchRequest(user=user, query=query, k=k, deadline_s=deadline_s)


_RELOAD_KEYS = frozenset({"index", "index_dir", "summaries", "precompute"})


def parse_reload_request(body: bytes) -> Dict[str, str]:
    """Validate a ``POST /admin/reload`` body into path overrides.

    An empty body (or ``{}``) reloads the daemon's configured artifact
    paths - the "a new file replaced the old one on disk" flow. Keys
    ``index`` / ``index_dir`` / ``summaries`` / ``precompute`` override
    individual paths; anything else is a typed 400.
    """
    if not body:
        return {}
    payload = _load_json_object(body)
    unknown = set(payload) - _RELOAD_KEYS
    if unknown:
        raise HttpError(
            400, "ValidationError",
            f"unknown reload field(s) {sorted(unknown)}; "
            f"allowed: {sorted(_RELOAD_KEYS)}",
        )
    overrides: Dict[str, str] = {}
    for key, value in payload.items():
        if not isinstance(value, str) or not value:
            raise HttpError(
                400, "ValidationError",
                f"reload field {key!r} must be a non-empty path string",
            )
        overrides[key] = value
    if "index" in overrides and "index_dir" in overrides:
        raise HttpError(
            400, "ValidationError",
            "reload fields 'index' and 'index_dir' are mutually exclusive",
        )
    return overrides


_DELTA_KEYS = frozenset(
    {"inserts", "deletes", "reweights", "decay", "decay_floor"}
)


def _delta_edges(payload: Mapping, field: str, arity: int) -> Tuple:
    """Validate one edge-edit list: a list of ``arity``-element rows."""
    rows = payload.get(field, [])
    if not isinstance(rows, list):
        raise HttpError(
            400, "ValidationError", f"delta field {field!r} must be a list"
        )
    edits = []
    for row in rows:
        if (not isinstance(row, list) or len(row) != arity
                or not all(isinstance(v, (int, float))
                           and not isinstance(v, bool) for v in row)):
            raise HttpError(
                400, "ValidationError",
                f"delta field {field!r} rows must be {arity}-element "
                f"numeric lists, got {row!r}",
            )
        if any(not isinstance(v, int) for v in row[:2]):
            raise HttpError(
                400, "ValidationError",
                f"delta field {field!r} endpoints must be integers, "
                f"got {row!r}",
            )
        edits.append(tuple(row))
    return tuple(edits)


def parse_delta_request(body: bytes) -> Dict:
    """Validate a ``POST /admin/delta`` body into GraphDelta kwargs.

    The body mirrors :class:`~repro.core.dynamics.GraphDelta`:
    ``inserts`` / ``reweights`` are lists of ``[source, target, prob]``,
    ``deletes`` lists of ``[source, target]``, ``decay`` /
    ``decay_floor`` optional floats. Shape errors are typed 400s here;
    semantic errors (unknown edge, duplicate edit, bad probability) are
    left to ``GraphDelta`` / the apply path, whose
    :class:`~repro.exceptions.ConfigurationError` also maps to 400.
    """
    if not body:
        raise HttpError(
            400, "ValidationError",
            "delta request requires a JSON body with at least one edit",
        )
    payload = _load_json_object(body)
    unknown = set(payload) - _DELTA_KEYS
    if unknown:
        raise HttpError(
            400, "ValidationError",
            f"unknown delta field(s) {sorted(unknown)}; "
            f"allowed: {sorted(_DELTA_KEYS)}",
        )
    kwargs: Dict = {
        "inserts": _delta_edges(payload, "inserts", 3),
        "deletes": _delta_edges(payload, "deletes", 2),
        "reweights": _delta_edges(payload, "reweights", 3),
    }
    for field, default in (("decay", 1.0), ("decay_floor", 0.0)):
        value = payload.get(field, default)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise HttpError(
                400, "ValidationError",
                f"delta field {field!r} must be a number",
            )
        kwargs[field] = float(value)
    if (not kwargs["inserts"] and not kwargs["deletes"]
            and not kwargs["reweights"] and kwargs["decay"] == 1.0):
        raise HttpError(
            400, "ValidationError",
            "delta request contains no edits (empty lists and decay=1.0)",
        )
    return kwargs


# ---------------------------------------------------------------------------
# Response encoding
# ---------------------------------------------------------------------------


def error_body(error_type: str, message: str) -> Dict:
    """The canonical typed-error JSON payload."""
    return {"error": {"type": error_type, "message": message}}


def error_for_exception(exc: BaseException) -> Tuple[int, Dict]:
    """Map an exception to ``(status, error payload)`` - never a traceback.

    :class:`HttpError` carries its own status; the library's
    :class:`ReproError` subtypes map to client errors (bad user id,
    unusable query, missing summary -> 400) or artifact rejection (409);
    anything else is an opaque ``InternalError`` 500 (the message names
    the exception class only, so internals never leak to clients).
    """
    if isinstance(exc, HttpError):
        return exc.status, error_body(exc.error_type, exc.message)
    if isinstance(exc, ArtifactError):
        return 409, error_body(type(exc).__name__, str(exc))
    if isinstance(
        exc,
        (ConfigurationError, QueryError, NodeNotFoundError, UnknownTopicError),
    ):
        return 400, error_body(type(exc).__name__, str(exc))
    if isinstance(exc, ReproError):
        return 400, error_body(type(exc).__name__, str(exc))
    return 500, error_body(
        "InternalError", f"unexpected {type(exc).__name__} while serving"
    )


def results_payload(request: SearchRequest, outcome, generation: int) -> Dict:
    """The ``POST /search`` success body for one answered request.

    *outcome* is the searcher's ``(results, stats)`` pair. Influence
    floats pass through ``json`` unrounded (``repr`` round-trips the
    exact double), which is what makes daemon responses bit-comparable
    to direct :meth:`~repro.core.engine.PITEngine.search` calls.
    """
    results, stats = outcome
    return {
        "user": request.user,
        "query": request.query.raw,
        "k": request.k,
        "results": [
            {
                "topic_id": r.topic_id,
                "label": r.label,
                "influence": r.influence,
            }
            for r in results
        ],
        "stats": {
            "topics_considered": stats.topics_considered,
            "topics_pruned": stats.topics_pruned,
            "entries_probed": stats.entries_probed,
            "expansion_rounds": stats.expansion_rounds,
            "representatives_touched": stats.representatives_touched,
        },
        "generation": generation,
    }


def encode_response(
    status: int,
    payload,
    *,
    content_type: str = "application/json",
    keep_alive: bool = True,
    retry_after: Optional[int] = None,
) -> bytes:
    """Serialize one complete HTTP/1.1 response.

    *payload* is a JSON-able object (dicts/lists) or pre-encoded
    ``bytes``/``str`` (the ``/metrics`` text path).
    """
    if isinstance(payload, bytes):
        body = payload
    elif isinstance(payload, str):
        body = payload.encode("utf-8")
    else:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    if retry_after is not None:
        lines.append(f"Retry-After: {int(retry_after)}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body
