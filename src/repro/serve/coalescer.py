"""Request coalescing: batch concurrent searches through one engine.

The engine is not thread-safe (bounded LRU caches, compiled query plans,
shard cache), so all search work runs on **one** worker thread. That
constraint is also an opportunity: while the worker is busy, concurrent
requests pile up in the queue, and the dispatcher drains them as a batch
and routes same-``(keywords, mode, k)`` requests through
``search_batch`` - the engine's vectorized multi-request path that
shares query-plan compilation and summary-array decoding across callers.
Under load the daemon gets *more* efficient per request, which is the
opposite of collapse.

Isolation guarantees, in order of importance:

* **A bad request fails alone.** A grouped ``search_batch`` that raises
  is retried per-request, so only the offending request gets the typed
  error (counter ``serve.batch_fallbacks``).
* **Timed-out work is abandoned, never returned.** Deadlines are checked
  when a batch is drained (expired requests get 504 without touching the
  engine) and again before delivering results (a request whose caller
  already timed out is dropped on the floor - its future is done).
* **Results are delivered on the event loop.** The worker thread only
  computes; futures are resolved back on the loop thread, so handler
  coroutines never see cross-thread wakeups.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .. import _faults
from ..core.search import normalized_query_key
from ..obs.registry import MetricsRegistry, NullRegistry
from .protocol import HttpError, SearchRequest

__all__ = ["Coalescer", "PendingSearch"]


@dataclass
class PendingSearch:
    """One admitted request waiting for (or undergoing) execution."""

    request: SearchRequest
    deadline: float  # absolute, time.monotonic() domain
    future: "asyncio.Future[Tuple[Any, int]]"
    enqueued_at: float = field(default_factory=time.monotonic)


def _group_key(pending: PendingSearch) -> Tuple:
    """Requests coalesce when the engine work is shareable.

    Same *normalized* keywords, same match mode, same k - users may
    differ, which is exactly what ``search_batch`` vectorizes over.
    Normalizing here (not just in the plan cache) means ``"Phone Music"``
    and ``"music phone"`` land in one batch and one answer-cache probe.
    """
    keywords, mode = normalized_query_key(pending.request.query)
    return (keywords, mode, pending.request.k)


class Coalescer:
    """Queue + dispatcher turning concurrent requests into engine batches.

    Parameters
    ----------
    engines:
        The :class:`~repro.serve.reload.EngineManager`; the engine (and
        its generation) is resolved per batch, so a hot reload takes
        effect at the next batch boundary with no request ever split
        across two engines.
    executor:
        The single-thread executor serializing all engine access.
    max_batch:
        Upper bound on requests drained per dispatch round.
    """

    def __init__(
        self,
        engines,
        executor,
        *,
        max_batch: int = 8,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self._engines = engines
        self._executor = executor
        self._max_batch = int(max_batch)
        self._metrics = metrics if metrics is not None else NullRegistry()
        self._queue: "asyncio.Queue[PendingSearch]" = asyncio.Queue()

    def submit(
        self, request: SearchRequest, deadline: float
    ) -> "asyncio.Future[Tuple[Any, int]]":
        """Enqueue one request; resolves to ``(outcome, generation)``."""
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Tuple[Any, int]]" = loop.create_future()
        self._queue.put_nowait(
            PendingSearch(request=request, deadline=deadline, future=future)
        )
        return future

    @property
    def backlog(self) -> int:
        """Requests enqueued but not yet drained into a batch."""
        return self._queue.qsize()

    async def run(self) -> None:
        """Dispatcher loop; runs until cancelled (at server shutdown)."""
        loop = asyncio.get_running_loop()
        while True:
            batch = [await self._queue.get()]
            while len(batch) < self._max_batch:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            live = self._triage(batch)
            if not live:
                continue
            engine, generation = self._engines.acquire()
            self._metrics.observe("serve.batch_size", len(live))
            if len(live) > 1:
                self._metrics.inc("serve.coalesced_batches")
                self._metrics.inc("serve.coalesced_requests", len(live))
            try:
                outcomes = await loop.run_in_executor(
                    self._executor, self._execute_groups, live, engine
                )
            except Exception as exc:  # executor rejected / engine wedged
                self._deliver_failure(live, exc)
                continue
            self._deliver(outcomes, generation)

    # ------------------------------------------------------------------
    def _triage(self, batch: List[PendingSearch]) -> List[PendingSearch]:
        """Drop abandoned requests, 504 expired ones, keep the live rest."""
        now = time.monotonic()
        live: List[PendingSearch] = []
        for pending in batch:
            if pending.future.done():  # caller already timed out / gone
                continue
            if pending.deadline <= now:
                self._metrics.inc("serve.expired_in_queue")
                pending.future.set_exception(
                    HttpError(
                        504, "DeadlineExceeded",
                        "deadline expired before execution",
                    )
                )
                continue
            self._metrics.observe(
                "serve.queue_wait_seconds", now - pending.enqueued_at
            )
            live.append(pending)
        return live

    def _execute_groups(
        self, live: List[PendingSearch], engine
    ) -> List[Tuple[PendingSearch, Any]]:
        """Worker-thread body: run each coalesced group through the engine.

        Returns ``(pending, outcome_or_exception)`` pairs; nothing here
        touches asyncio state.
        """
        _faults.inject("serve.search_delay", batch=len(live))
        groups: Dict[Tuple, List[PendingSearch]] = {}
        for pending in live:
            groups.setdefault(_group_key(pending), []).append(pending)
        outcomes: List[Tuple[PendingSearch, Any]] = []
        for key, members in groups.items():
            k = key[2]
            try:
                outs = engine.search_batch(
                    [(m.request.user, m.request.query) for m in members],
                    k,
                    with_stats=True,
                )
                outcomes.extend(zip(members, outs))
            except Exception:
                # Per-caller isolation: re-run individually so only the
                # genuinely bad request carries the error.
                if len(members) > 1:
                    self._metrics.inc("serve.batch_fallbacks")
                for m in members:
                    try:
                        out = engine.search(
                            m.request.user, m.request.query, m.request.k,
                            with_stats=True,
                        )
                        outcomes.append((m, out))
                    except Exception as exc:
                        outcomes.append((m, exc))
        return outcomes

    def _deliver(
        self, outcomes: List[Tuple[PendingSearch, Any]], generation: int
    ) -> None:
        """Resolve futures on the loop thread; never deliver past-deadline."""
        now = time.monotonic()
        for pending, outcome in outcomes:
            if pending.future.done():  # abandoned while executing
                continue
            if pending.deadline <= now:
                self._metrics.inc("serve.expired_in_flight")
                pending.future.set_exception(
                    HttpError(
                        504, "DeadlineExceeded",
                        "deadline expired during execution",
                    )
                )
                continue
            if isinstance(outcome, BaseException):
                pending.future.set_exception(outcome)
            else:
                pending.future.set_result((outcome, generation))

    def _deliver_failure(
        self, live: List[PendingSearch], exc: Exception
    ) -> None:
        for pending in live:
            if not pending.future.done():
                pending.future.set_exception(exc)
