"""Admission control: a bounded request queue with explicit shedding.

The daemon runs one shared engine behind a single search executor, so
throughput has a hard ceiling; without admission control an overload
turns into an unbounded queue, latency grows without limit, and every
caller times out (congestion collapse). The controller instead bounds
the number of requests admitted-but-unfinished and *sheds* the excess
with an immediate 429 + ``Retry-After`` - cheap for the server, honest
to the caller, and it keeps the latency of accepted requests bounded by
``capacity x service_time``.

Single-threaded by design: admit/release happen only on the event loop,
so a plain counter is race-free. Gauges ``serve.queue_depth`` and the
``serve.shed`` counter make shedding visible to operators.
"""

from __future__ import annotations

from typing import Optional

from ..obs.registry import MetricsRegistry, NullRegistry
from .protocol import HttpError

__all__ = ["AdmissionController"]


class AdmissionController:
    """Bound the number of concurrently admitted requests.

    Parameters
    ----------
    capacity:
        Maximum admitted-but-unfinished requests (queued + executing).
        Sized relative to the engine's service time: latency of the last
        accepted request is ~``capacity x mean_service_time``.
    metrics:
        Registry receiving ``serve.queue_depth`` / ``serve.shed``.
    """

    def __init__(self, capacity: int, *, metrics: Optional[MetricsRegistry] = None):
        if capacity < 1:
            raise ValueError(f"admission capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._pending = 0
        self._metrics = metrics if metrics is not None else NullRegistry()

    @property
    def pending(self) -> int:
        """Requests currently admitted and not yet released."""
        return self._pending

    def admit(self) -> None:
        """Admit one request or shed it with a typed 429.

        Raises :class:`~repro.serve.protocol.HttpError` (429,
        ``Overloaded``) when the queue is full; the caller must pair a
        successful ``admit`` with exactly one :meth:`release`.
        """
        if self._pending >= self.capacity:
            self._metrics.inc("serve.shed")
            raise HttpError(
                429,
                "Overloaded",
                f"server at capacity ({self.capacity} requests in flight); "
                "retry with backoff",
                retry_after=1,
            )
        self._pending += 1
        self._metrics.set_gauge("serve.queue_depth", self._pending)

    def release(self) -> None:
        """Release one previously admitted request."""
        if self._pending <= 0:
            raise RuntimeError("release() without a matching admit()")
        self._pending -= 1
        self._metrics.set_gauge("serve.queue_depth", self._pending)
