"""Hot artifact reload: swap engines under traffic, refuse bad artifacts.

The operator's flow is: build new artifacts offline, drop them on disk
(or point at new paths), ``POST /admin/reload`` (or ``SIGHUP``). The
manager loads and fully validates the *new* engine off the event loop
while the old engine keeps answering every request, then swaps one
attribute - so there is never a moment without a serving engine and no
request is dropped or split across engines (batches resolve the engine
once, at drain time; see :mod:`repro.serve.coalescer`).

Validation is the artifact layer's own: checksums and graph signatures
are verified during load, so a truncated, bit-flipped, or
wrong-graph artifact raises
:class:`~repro.exceptions.ArtifactCorruptedError` (or kin) *before* the
swap point and the old engine simply stays current - a failed reload is
observable (409 + ``serve.reload_failures``) but harmless.

A generation counter stamps every response, which is how tests (and
operators) prove which artifact answered: responses across a reload go
``generation: 1`` -> ``generation: 2`` with zero errors in between.

The swap is also the answer-cache invalidation point: every generation is
a *new* engine whose cache tiers start empty (then re-warm from the
precompute artifact, when one is configured), so an answer computed under
generation N can never be served under generation N+1. The manager stamps
the new generation onto engines that expose ``set_reload_generation`` so
the ``cache.tier.generation`` gauge tracks the swap.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Dict, Optional, Tuple

from .. import _faults
from ..obs.registry import MetricsRegistry, NullRegistry

__all__ = ["EngineManager"]


class EngineManager:
    """Own the current engine and the reload lifecycle.

    Parameters
    ----------
    loader:
        ``loader(overrides)`` builds and validates a fresh engine;
        *overrides* is the (possibly empty) path-override mapping from
        ``POST /admin/reload``. The loader runs in an executor thread,
        never on the event loop.
    """

    def __init__(
        self,
        loader: Callable[[Dict[str, str]], object],
        *,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self._loader = loader
        self._metrics = metrics if metrics is not None else NullRegistry()
        self._engine: Optional[object] = None
        self._generation = 0
        self._lock = asyncio.Lock()
        self._reloading = False

    @property
    def current(self):
        """The serving engine (None before :meth:`load_initial`)."""
        return self._engine

    @property
    def generation(self) -> int:
        """Monotone artifact generation; 0 until the first load."""
        return self._generation

    @property
    def reloading(self) -> bool:
        """True while a reload is loading/validating (old engine serves)."""
        return self._reloading

    def acquire(self) -> Tuple[object, int]:
        """The engine and its generation, resolved atomically.

        Called once per dispatched batch so every request in a batch is
        answered - and stamped - by a single consistent engine.
        """
        if self._engine is None:
            raise RuntimeError("no engine loaded yet")
        return self._engine, self._generation

    async def load_initial(self) -> int:
        """Load the first engine (daemon warm-up); returns the generation."""
        return await self._load_and_swap({})

    async def reload(self, overrides: Dict[str, str]) -> int:
        """Load a new engine and swap it in; returns the new generation.

        Serialized: concurrent reloads queue on the lock. On any load
        failure the exception propagates (the server maps artifact
        errors to 409) and the current engine/generation are untouched.
        """
        self._metrics.inc("serve.reloads")
        try:
            return await self._load_and_swap(overrides)
        except Exception:
            self._metrics.inc("serve.reload_failures")
            raise

    async def _load_and_swap(self, overrides: Dict[str, str]) -> int:
        loop = asyncio.get_running_loop()
        async with self._lock:
            self._reloading = True
            try:
                engine = await loop.run_in_executor(
                    None, self._loader, dict(overrides)
                )
                _faults.inject(
                    "serve.reload.swap", generation=self._generation + 1
                )
                self._engine = engine
                self._generation += 1
                stamp = getattr(engine, "set_reload_generation", None)
                if stamp is not None:
                    stamp(self._generation)
                self._metrics.set_gauge("serve.generation", self._generation)
                return self._generation
            finally:
                self._reloading = False
