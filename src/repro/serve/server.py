"""The serving daemon: asyncio HTTP/JSON front-end over one shared engine.

Stdlib-only (``asyncio.start_server`` + hand-rolled HTTP/1.1 framing in
:mod:`repro.serve.protocol`); no web framework, no extra dependencies.
The moving parts and their contracts:

* **One engine, one worker thread.** The engine is not thread-safe, so
  every engine touch - searches *and* ``/metrics`` snapshots - runs on a
  single-thread executor. The event loop only parses, validates,
  admits, and frames bytes.
* **Admission before work** (:mod:`repro.serve.admission`): a full queue
  sheds with 429 instead of queueing unboundedly.
* **Coalescing** (:mod:`repro.serve.coalescer`): concurrent same-query
  requests execute as one vectorized ``search_batch``.
* **Deadlines**: every request carries an absolute monotonic deadline
  (caller's ``deadline_ms`` or the server default). The handler waits at
  most that long; the dispatcher refuses to start or deliver expired
  work. A 504 means the work was *abandoned*, not returned late.
* **Hot reload** (:mod:`repro.serve.reload`): ``POST /admin/reload`` or
  ``SIGHUP`` validates new artifacts off-loop and swaps atomically; a
  corrupt artifact is a 409 and the old engine keeps serving.
* **Streaming deltas** (:mod:`repro.core.dynamics`): ``POST
  /admin/delta`` applies a graph-edit batch to the live engine in place
  with surgical cache invalidation - no engine swap, no generation bump,
  warm state survives for every unaffected user.
* **Lifecycle**: ``/healthz`` is process-alive; ``/readyz`` is
  load-balancer truth (503 while warming, reloading, or draining).
  SIGTERM stops the listener, drains in-flight work up to the drain
  deadline, hard-cancels the rest, and exits 0; SIGINT exits 130.
* **Errors are typed JSON** - a traceback never crosses the socket.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Set, Tuple

from .. import _faults
from ..obs.export import render_prometheus
from ..obs.registry import MetricsRegistry, NullRegistry
from .admission import AdmissionController
from .coalescer import Coalescer
from .protocol import (
    HttpError,
    encode_response,
    error_for_exception,
    parse_delta_request,
    parse_reload_request,
    parse_search_request,
    results_payload,
)
from .reload import EngineManager

__all__ = ["PITServer", "ServeConfig"]

#: Largest request line / header line we accept (also the stream limit).
_MAX_LINE = 16 * 1024


@dataclass
class ServeConfig:
    """Tunables for one daemon instance (see docs/operations.md)."""

    host: str = "127.0.0.1"
    port: int = 8080
    #: Admission capacity: max admitted-but-unfinished /search requests.
    max_queue: int = 64
    #: Max requests drained into one dispatch round (coalescing bound).
    max_batch: int = 8
    #: Default per-request deadline when the caller sends none.
    default_deadline_s: float = 5.0
    #: How long SIGTERM waits for in-flight work before hard-cancel.
    drain_s: float = 10.0
    #: Request bodies above this are refused with 413 before reading.
    max_body_bytes: int = 64 * 1024
    #: Default k when the caller sends none.
    default_k: int = 10


class PITServer:
    """The daemon. Construct with an engine loader, then :meth:`run`.

    Parameters
    ----------
    loader:
        ``loader(overrides) -> engine`` building a fully validated
        serving engine (normally a closure over
        :meth:`~repro.core.serve_facade.ServingEngine.from_artifacts`).
        Called once at warm-up and once per reload, always off-loop.
    config:
        :class:`ServeConfig` tunables.
    metrics:
        Registry for ``serve.*`` metrics; pass the same registry the
        engine publishes to so ``/metrics`` is one coherent exposition.
    """

    def __init__(
        self,
        loader: Callable[[Dict[str, str]], object],
        config: Optional[ServeConfig] = None,
        *,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.config = config or ServeConfig()
        self._metrics = metrics if metrics is not None else NullRegistry()
        self.engines = EngineManager(loader, metrics=self._metrics)
        self.admission = AdmissionController(
            self.config.max_queue, metrics=self._metrics
        )
        # ONE worker thread: the engine's caches/plans are not thread-safe.
        self._search_executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="pit-search"
        )
        self.coalescer = Coalescer(
            self.engines,
            self._search_executor,
            max_batch=self.config.max_batch,
            metrics=self._metrics,
        )
        self._server: Optional[asyncio.base_events.Server] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._conn_tasks: Set[asyncio.Task] = set()
        #: Requests mid-handling, parse through response write: the drain
        #: barrier. Admission alone is not enough - it releases before
        #: the response bytes go out, and a hard-cancel in that gap
        #: would eat a completed result.
        self._active_requests = 0
        self._state = "warming"  # warming -> ready -> draining
        self._shutdown = asyncio.Event()
        self._exit_code = 0
        self._reload_task: Optional[asyncio.Task] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """``warming`` | ``ready`` | ``draining``."""
        return self._state

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0`` in tests)."""
        assert self._server is not None and self._server.sockets
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Bind the listener, warm the engine, flip to ready.

        The listener comes up *before* the engine loads so health
        probes get answers during warm-up (``/readyz`` says 503).
        """
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.config.host,
            self.config.port,
            limit=_MAX_LINE,
        )
        self._dispatcher = asyncio.ensure_future(self.coalescer.run())
        await self.engines.load_initial()
        self._state = "ready"
        self._metrics.set_gauge("serve.ready", 1)

    def request_shutdown(self, exit_code: int = 0) -> None:
        """Thread-safe :meth:`begin_drain` (test harnesses, embedders)."""
        if self._loop is None:
            raise RuntimeError("server not started")
        self._loop.call_soon_threadsafe(self.begin_drain, exit_code)

    def begin_drain(self, exit_code: int = 0) -> None:
        """Request shutdown (signal handlers and tests call this)."""
        if self._state != "draining":
            self._state = "draining"
            self._exit_code = exit_code
            self._metrics.set_gauge("serve.ready", 0)
            self._shutdown.set()

    async def drain(self) -> None:
        """Stop accepting, finish in-flight work, hard-cancel stragglers."""
        self._state = "draining"
        self._metrics.set_gauge("serve.ready", 0)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        deadline = time.monotonic() + self.config.drain_s
        while self._active_requests > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        if self._active_requests > 0:
            self._metrics.inc("serve.drain_hard_cancels", self._active_requests)
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except (asyncio.CancelledError, Exception):
                pass
        self._search_executor.shutdown(wait=True)

    async def run(
        self, *, ready_callback: Optional[Callable[[], None]] = None
    ) -> int:
        """Full daemon lifecycle; returns the process exit code.

        Installs SIGTERM (drain, exit 0), SIGINT (drain, exit 130) and
        SIGHUP (hot reload) handlers when the platform and thread allow
        it (tests drive :meth:`begin_drain` directly instead).
        """
        import signal

        await self.start()
        loop = asyncio.get_running_loop()
        installed = []
        for sig, code in ((signal.SIGTERM, 0), (signal.SIGINT, 130)):
            try:
                loop.add_signal_handler(sig, self.begin_drain, code)
                installed.append(sig)
            except (NotImplementedError, ValueError, RuntimeError):
                pass
        try:
            loop.add_signal_handler(signal.SIGHUP, self._reload_on_signal)
            installed.append(signal.SIGHUP)
        except (NotImplementedError, ValueError, RuntimeError, AttributeError):
            pass
        try:
            if ready_callback is not None:
                ready_callback()
            await self._shutdown.wait()
            await self.drain()
        finally:
            for sig in installed:
                try:
                    loop.remove_signal_handler(sig)
                except (NotImplementedError, ValueError, RuntimeError):
                    pass
        return self._exit_code

    def _reload_on_signal(self) -> None:
        if self._reload_task is not None and not self._reload_task.done():
            return  # a reload is already running; SIGHUP is level, not queue
        self._reload_task = asyncio.ensure_future(self._reload_quietly({}))

    async def _reload_quietly(self, overrides: Dict[str, str]) -> None:
        try:
            await self.engines.reload(overrides)
        except Exception:
            pass  # counted in serve.reload_failures; old engine serves on

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            await self._connection_loop(reader, writer)
        except asyncio.CancelledError:
            pass  # hard-cancel at drain deadline: just drop the socket
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _connection_loop(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            try:
                parsed = await self._read_request(reader)
            except HttpError as exc:
                status, body = error_for_exception(exc)
                writer.write(
                    encode_response(
                        status, body, keep_alive=False,
                        retry_after=exc.retry_after,
                    )
                )
                await writer.drain()
                return
            if parsed is None:  # clean EOF between requests
                return
            method, target, headers, body = parsed
            self._active_requests += 1
            try:
                status, payload, extra = await self._route(method, target, body)
                keep_alive = headers.get("connection", "").lower() != "close"
                writer.write(
                    encode_response(
                        status, payload, keep_alive=keep_alive, **extra
                    )
                )
                await writer.drain()
            finally:
                self._active_requests -= 1
            if not keep_alive:
                return

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        """Parse one request; None on clean EOF, HttpError on garbage."""
        try:
            line = await reader.readline()
        except (ValueError, asyncio.LimitOverrunError):
            raise HttpError(400, "MalformedRequest", "request line too long")
        if not line:
            return None
        parts = line.decode("latin-1", "replace").split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise HttpError(400, "MalformedRequest", "malformed request line")
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            try:
                raw = await reader.readline()
            except (ValueError, asyncio.LimitOverrunError):
                raise HttpError(400, "MalformedRequest", "header line too long")
            if raw in (b"\r\n", b"\n", b""):
                break
            name, sep, value = raw.decode("latin-1", "replace").partition(":")
            if not sep:
                raise HttpError(400, "MalformedRequest", "malformed header")
            headers[name.strip().lower()] = value.strip()
        length_raw = headers.get("content-length", "0")
        try:
            length = int(length_raw)
        except ValueError:
            raise HttpError(
                400, "MalformedRequest",
                f"invalid Content-Length {length_raw!r}",
            )
        if length < 0:
            raise HttpError(
                400, "MalformedRequest", f"negative Content-Length {length}"
            )
        if length > self.config.max_body_bytes:
            # Refused before reading the body; connection must close.
            raise HttpError(
                413, "PayloadTooLarge",
                f"body of {length} bytes exceeds limit "
                f"{self.config.max_body_bytes}",
            )
        body = b""
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise HttpError(
                    400, "MalformedRequest", "body shorter than Content-Length"
                )
        return method, target, headers, body

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _route(
        self, method: str, target: str, body: bytes
    ) -> Tuple[int, object, Dict]:
        """Dispatch one request; returns (status, payload, header extras)."""
        path = target.split("?", 1)[0]
        try:
            if path == "/healthz":
                if method != "GET":
                    raise HttpError(405, "MethodNotAllowed", "use GET")
                return 200, {"status": "ok", "state": self._state}, {}
            if path == "/readyz":
                if method != "GET":
                    raise HttpError(405, "MethodNotAllowed", "use GET")
                return self._readyz()
            if path == "/metrics":
                if method != "GET":
                    raise HttpError(405, "MethodNotAllowed", "use GET")
                return await self._metrics_response()
            if path == "/search":
                if method != "POST":
                    raise HttpError(405, "MethodNotAllowed", "use POST")
                return await self._search(body)
            if path == "/admin/reload":
                if method != "POST":
                    raise HttpError(405, "MethodNotAllowed", "use POST")
                return await self._admin_reload(body)
            if path == "/admin/delta":
                if method != "POST":
                    raise HttpError(405, "MethodNotAllowed", "use POST")
                return await self._admin_delta(body)
            raise HttpError(404, "NotFound", f"no route for {path}")
        except Exception as exc:  # noqa: BLE001 - typed JSON, never a traceback
            status, payload = error_for_exception(exc)
            if status >= 500:
                self._metrics.inc("serve.errors")
            extra: Dict = {}
            if isinstance(exc, HttpError) and exc.retry_after is not None:
                extra["retry_after"] = exc.retry_after
            return status, payload, extra

    def _readyz(self) -> Tuple[int, object, Dict]:
        ready = self._state == "ready" and not self.engines.reloading
        if ready:
            return 200, {"ready": True, "generation": self.engines.generation}, {}
        return 503, {"ready": False, "state": self._state}, {}

    async def _metrics_response(self) -> Tuple[int, object, Dict]:
        engine = self.engines.current
        if engine is None:
            snapshot = self._metrics.snapshot()
        else:
            # Snapshot via the search executor: gauge publication walks
            # engine caches, which must not race active searches.
            loop = asyncio.get_running_loop()
            snapshot = await loop.run_in_executor(
                self._search_executor, engine.metrics_snapshot
            )
        text = render_prometheus(snapshot)
        return 200, text, {"content_type": "text/plain; version=0.0.4"}

    async def _search(self, body: bytes) -> Tuple[int, object, Dict]:
        if self._state == "draining":
            self._metrics.inc("serve.draining_rejects")
            raise HttpError(503, "Draining", "server is shutting down")
        if self._state != "ready":
            raise HttpError(503, "NotReady", "server is warming up")
        _faults.inject("serve.handle", path="/search")
        request = parse_search_request(body, default_k=self.config.default_k)
        self._metrics.inc("serve.requests")
        start = time.monotonic()
        timeout = (
            request.deadline_s
            if request.deadline_s is not None
            else self.config.default_deadline_s
        )
        self.admission.admit()
        try:
            future = self.coalescer.submit(request, start + timeout)
            try:
                outcome, generation = await asyncio.wait_for(future, timeout)
            except asyncio.TimeoutError:
                # wait_for cancelled the future: the dispatcher sees it
                # done and abandons the result - never returned stale.
                self._metrics.inc("serve.deadline_exceeded")
                raise HttpError(
                    504, "DeadlineExceeded",
                    f"request exceeded its {timeout:.3f}s deadline",
                ) from None
        finally:
            self.admission.release()
        self._metrics.observe(
            "serve.latency_seconds", time.monotonic() - start
        )
        self._metrics.inc("serve.responses_ok")
        return 200, results_payload(request, outcome, generation), {}

    async def _admin_reload(self, body: bytes) -> Tuple[int, object, Dict]:
        overrides = parse_reload_request(body)
        generation = await self.engines.reload(overrides)
        return 200, {"status": "reloaded", "generation": generation}, {}

    async def _admin_delta(self, body: bytes) -> Tuple[int, object, Dict]:
        """``POST /admin/delta``: stream a graph-edit batch into the
        live engine (:meth:`ServingEngine.apply_delta`).

        Runs on the search executor - the engine is single-threaded, and
        the delta mutates it in place, so it must serialize with active
        searches. Unlike a reload there is no generation bump: the same
        engine keeps serving, minus exactly the invalidated state.
        """
        from ..core.dynamics import GraphDelta

        if self._state != "ready":
            raise HttpError(503, "NotReady", "server is not serving")
        if self.engines.reloading:
            raise HttpError(
                503, "Reloading",
                "a reload is in progress; retry the delta after it lands",
            )
        kwargs = parse_delta_request(body)
        delta = GraphDelta(**kwargs)
        engine = self.engines.current
        if engine is None:
            raise HttpError(503, "NotReady", "no engine is loaded")
        loop = asyncio.get_running_loop()
        report = await loop.run_in_executor(
            self._search_executor, engine.apply_delta, delta
        )
        self._metrics.inc("serve.deltas")
        return 200, {"status": "applied", **report}, {}
