"""Random-walk substrate: walk engine, Algorithm 6 index, absorbing helpers.

See DESIGN.md systems S6-S8.
"""

from .absorbing import absorption_distances, closeness_from_distance, first_absorption
from .engine import WalkEngine, WalkRecord
from .index import WalkIndex, hoeffding_sample_size

__all__ = [
    "WalkEngine",
    "WalkRecord",
    "WalkIndex",
    "hoeffding_sample_size",
    "first_absorption",
    "absorption_distances",
    "closeness_from_distance",
]
