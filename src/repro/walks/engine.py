"""Random-walk engine (substrate S6).

A walk of length ``L`` starts at a node and repeatedly moves to an
out-neighbor chosen with probability proportional to the edge's transition
probability (uniform choice is available for ablations). Following
Algorithm 6 of the paper, a walk *may* revisit nodes, but the recorded path
is deduplicated: each node is appended only on its first visit. A walk
terminates early at a dead end (node with no out-edges).

:class:`WalkEngine` pre-computes per-node cumulative probability tables so a
step is a single binary search, which is what makes index construction on
tens of thousands of nodes practical in pure Python.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .._utils import SeedLike, coerce_rng, require_in_range
from ..exceptions import ConfigurationError
from ..graph import SocialGraph

__all__ = ["WalkEngine", "WalkRecord"]


class WalkRecord:
    """Result of one sampled walk.

    Attributes
    ----------
    path:
        ``int64`` array of nodes in first-visit order; ``path[0]`` is the
        start node (this mirrors Algorithm 6's ``I[i][w]``, with the start
        prepended so positions double as hop distances along the walk).
    visit_counts:
        Mapping-free representation of Algorithm 6's ``visited[]``: the
        number of times each node in *path* was visited during the walk,
        aligned with *path*.
    steps_taken:
        Number of transitions actually performed (``<= L`` when the walk hit
        a dead end).
    """

    __slots__ = ("path", "visit_counts", "steps_taken")

    def __init__(self, path: np.ndarray, visit_counts: np.ndarray, steps_taken: int):
        self.path = path
        self.visit_counts = visit_counts
        self.steps_taken = steps_taken

    def __len__(self) -> int:
        return int(self.path.size)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WalkRecord(path={self.path.tolist()}, steps={self.steps_taken})"


class WalkEngine:
    """Samples transition-probability-weighted random walks on a graph.

    Parameters
    ----------
    graph:
        The social graph to walk on.
    weighted:
        When true (default), the next hop is chosen with probability
        proportional to the edge transition probability; when false, chosen
        uniformly among out-neighbors (the literal reading of Algorithm 6's
        "randomly selected neighbor" - kept as an ablation knob; DESIGN.md
        note 1 explains why weighted is the default).
    seed:
        Seed or generator for the walk stream.
    """

    def __init__(self, graph: SocialGraph, *, weighted: bool = True, seed: SeedLike = None):
        self._graph = graph
        self._weighted = bool(weighted)
        self._rng = coerce_rng(seed)
        # Per-node cumulative transition mass, aligned with the CSR layout.
        probs = graph._out_probs
        self._cumprobs = np.cumsum(probs)
        self._indptr = graph._out_indptr
        self._targets = graph._out_targets

    @property
    def graph(self) -> SocialGraph:
        """The underlying graph."""
        return self._graph

    @property
    def weighted(self) -> bool:
        """Whether steps are transition-probability weighted."""
        return self._weighted

    # ------------------------------------------------------------------
    def step(self, node: int) -> Optional[int]:
        """One transition out of *node*; ``None`` at a dead end."""
        lo = int(self._indptr[node])
        hi = int(self._indptr[node + 1])
        if lo == hi:
            return None
        if not self._weighted:
            return int(self._targets[lo + self._rng.integers(hi - lo)])
        base = self._cumprobs[lo - 1] if lo > 0 else 0.0
        total = self._cumprobs[hi - 1] - base
        draw = base + self._rng.random() * total
        j = int(np.searchsorted(self._cumprobs[lo:hi], draw, side="right"))
        j = min(j, hi - lo - 1)
        return int(self._targets[lo + j])

    def walk(self, start: int, length: int) -> WalkRecord:
        """Sample one walk of up to *length* transitions from *start*.

        The returned record's ``path`` is the deduplicated first-visit order
        (Algorithm 6 semantics); revisits only increase ``visit_counts``.
        """
        require_in_range("length", length, 0)
        start = self._graph._check_node(start)
        path: List[int] = [start]
        position = {start: 0}
        counts: List[int] = [1]
        current = start
        steps = 0
        for _ in range(length):
            nxt = self.step(current)
            if nxt is None:
                break
            steps += 1
            seen_at = position.get(nxt)
            if seen_at is None:
                position[nxt] = len(path)
                path.append(nxt)
                counts.append(1)
            else:
                counts[seen_at] += 1
            current = nxt
        return WalkRecord(
            np.asarray(path, dtype=np.int64),
            np.asarray(counts, dtype=np.int64),
            steps,
        )

    def walks(self, start: int, count: int, length: int) -> List[WalkRecord]:
        """Sample *count* independent walks from *start*."""
        require_in_range("count", count, 1)
        return [self.walk(start, length) for _ in range(count)]
