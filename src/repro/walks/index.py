"""Walk index construction - Algorithm 6, ``INVERTTVHIT_INDEX`` (S7).

For every node ``w`` the index stores ``R`` sampled L-length random walks
(``I[R][n]``), a *time-variant visiting frequency* table ``H[L][n]`` whose
entry ``H[j][v]`` is the maximum per-walk visiting frequency of node ``v``
observed at walk step ``j`` (in units of ``1/R``), and a sampled reverse
reachability index ``I_L[v]`` listing the walk start nodes whose walks
reached ``v`` (the Monte-Carlo stand-in for "nodes that can reach v within L
hops" used by Algorithms 1 and 4).

The paper bounds the sample size ``R`` via the Hoeffding inequality;
:func:`hoeffding_sample_size` reproduces that bound so callers can pick
``R`` from a target accuracy instead of guessing.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from .._utils import SeedLike, coerce_rng, require_in_range
from ..exceptions import ConfigurationError, IndexNotBuiltError
from ..graph import SocialGraph
from .engine import WalkEngine, WalkRecord

__all__ = ["WalkIndex", "hoeffding_sample_size"]


def hoeffding_sample_size(epsilon: float, delta: float) -> int:
    """Sample size ``R`` so a mean of [0,1] variables errs < *epsilon* w.p. >= 1-*delta*.

    Standard Hoeffding bound: ``R >= ln(2/delta) / (2 * epsilon^2)``. The
    paper invokes this to size its walk samples (§4.1).
    """
    if not 0.0 < epsilon < 1.0:
        raise ConfigurationError(f"epsilon must be in (0, 1), got {epsilon!r}")
    if not 0.0 < delta < 1.0:
        raise ConfigurationError(f"delta must be in (0, 1), got {delta!r}")
    return int(math.ceil(math.log(2.0 / delta) / (2.0 * epsilon * epsilon)))


class WalkIndex:
    """Materialized random-walk samples for every node of a graph.

    Parameters
    ----------
    graph:
        The social graph to index.
    walk_length:
        ``L`` - the maximum number of transitions per walk.
    samples_per_node:
        ``R`` - walks sampled from every node.
    weighted:
        Passed to :class:`~repro.walks.engine.WalkEngine`.
    seed:
        Seed or generator; a fixed seed makes the whole index deterministic.

    Call :meth:`build` (or construct via :meth:`built`) before querying.
    """

    def __init__(
        self,
        graph: SocialGraph,
        walk_length: int,
        samples_per_node: int,
        *,
        weighted: bool = True,
        seed: SeedLike = None,
    ):
        require_in_range("walk_length", walk_length, 1)
        require_in_range("samples_per_node", samples_per_node, 1)
        self._graph = graph
        self._length = int(walk_length)
        self._samples = int(samples_per_node)
        self._engine = WalkEngine(graph, weighted=weighted, seed=seed)
        self._walks: Optional[List[List[WalkRecord]]] = None
        self._hit_frequency: Optional[np.ndarray] = None
        self._reverse: Optional[List[Set[int]]] = None
        self._padded: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    @classmethod
    def built(
        cls,
        graph: SocialGraph,
        walk_length: int,
        samples_per_node: int,
        *,
        weighted: bool = True,
        seed: SeedLike = None,
    ) -> "WalkIndex":
        """Construct and immediately :meth:`build` an index."""
        index = cls(
            graph,
            walk_length,
            samples_per_node,
            weighted=weighted,
            seed=seed,
        )
        index.build()
        return index

    @property
    def graph(self) -> SocialGraph:
        """The indexed graph."""
        return self._graph

    @property
    def walk_length(self) -> int:
        """``L`` - maximum transitions per walk."""
        return self._length

    @property
    def samples_per_node(self) -> int:
        """``R`` - walks sampled per node."""
        return self._samples

    @property
    def is_built(self) -> bool:
        """Whether :meth:`build` has completed."""
        return self._walks is not None

    def _require_built(self) -> None:
        if self._walks is None:
            raise IndexNotBuiltError("WalkIndex.build() has not been called")

    # ------------------------------------------------------------------
    def build(self) -> "WalkIndex":
        """Run Algorithm 6: sample walks and fill I, H and I_L.

        Idempotent: calling build twice leaves the first result in place.
        """
        if self._walks is not None:
            return self
        n = self._graph.n_nodes
        length = self._length
        samples = self._samples
        inv_r = 1.0 / samples

        walks: List[List[WalkRecord]] = [[] for _ in range(n)]
        # Row j (1-based step) holds H[j][v]; row 0 stays zero.
        hit = np.zeros((length + 1, n), dtype=np.float64)
        reverse: List[Set[int]] = [set() for _ in range(n)]

        for start in range(n):
            for _ in range(samples):
                record = self._sample_and_account(start, length, inv_r, hit, reverse)
                walks[start].append(record)

        self._walks = walks
        self._hit_frequency = hit
        self._reverse = reverse
        return self

    def _sample_and_account(
        self,
        start: int,
        length: int,
        inv_r: float,
        hit: np.ndarray,
        reverse: List[Set[int]],
    ) -> WalkRecord:
        """One walk plus its Algorithm 6 bookkeeping (lines 6-19)."""
        path: List[int] = [start]
        position: Dict[int, int] = {start: 0}
        counts: List[int] = [1]
        visited: Dict[int, float] = {start: inv_r}
        current = start
        steps = 0
        for j in range(1, length + 1):
            nxt = self._engine.step(current)
            if nxt is None:
                break
            steps += 1
            if nxt not in visited:
                visited[nxt] = inv_r
                position[nxt] = len(path)
                path.append(nxt)
                counts.append(1)
                reverse[nxt].add(start)
            else:
                visited[nxt] += inv_r
                counts[position[nxt]] += 1
            if hit[j][nxt] < visited[nxt]:
                hit[j][nxt] = visited[nxt]
            current = nxt
        return WalkRecord(
            np.asarray(path, dtype=np.int64),
            np.asarray(counts, dtype=np.int64),
            steps,
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def walks_from(self, node: int) -> List[WalkRecord]:
        """The ``R`` walk records sampled from *node* (``I[.][node]``)."""
        self._require_built()
        return self._walks[self._graph._check_node(node)]

    def padded_paths(self) -> np.ndarray:
        """Every walk's first-visit path as one padded int matrix.

        Shape ``(n_nodes * R, width)`` int64, padded with ``-1``: row
        ``v * R + k`` is walk ``k`` of node ``v`` (column 0 the start
        node), so a batch of source nodes maps to row blocks with pure
        arithmetic - no per-record Python loop. Built lazily on first
        call and cached; the array is read-only shared state, do not
        mutate it.
        """
        self._require_built()
        if self._padded is None:
            records = [r for walks in self._walks for r in walks]
            width = max(r.path.size for r in records)
            padded = np.full((len(records), width), -1, dtype=np.int64)
            for k, record in enumerate(records):
                padded[k, : record.path.size] = record.path
            padded.setflags(write=False)
            self._padded = padded
        return self._padded

    def hitting_frequency(self, step: int, node: int) -> float:
        """``H[step][node]`` - max per-walk visit frequency at walk step *step*.

        *step* is 1-based, matching the paper's Iteration-1 .. Iteration-L.
        """
        self._require_built()
        require_in_range("step", step, 1, self._length)
        return float(self._hit_frequency[step][self._graph._check_node(node)])

    def hitting_frequencies(self) -> np.ndarray:
        """The full ``H`` table, shape ``(L+1, n)``; row 0 is all zeros."""
        self._require_built()
        return self._hit_frequency

    def reverse_reachable(self, node: int) -> np.ndarray:
        """``I_L[node]`` - sampled set of start nodes whose walks hit *node*.

        Sorted ``int64`` array; does not include *node* itself unless one of
        its own walks looped back to it (it cannot: the start is recorded as
        already visited).
        """
        self._require_built()
        members = self._reverse[self._graph._check_node(node)]
        return np.asarray(sorted(members), dtype=np.int64)

    def reverse_reachable_set(self, node: int) -> Set[int]:
        """``I_L[node]`` as a set (no copy of the internal set is exposed)."""
        self._require_built()
        return set(self._reverse[self._graph._check_node(node)])

    def memory_bytes(self) -> int:
        """Approximate resident size of the index payload, in bytes."""
        self._require_built()
        total = self._hit_frequency.nbytes
        for records in self._walks:
            for record in records:
                total += record.path.nbytes + record.visit_counts.nbytes
        for members in self._reverse:
            total += 8 * len(members)
        return int(total)
