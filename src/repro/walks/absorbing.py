"""Absorbing-walk helpers (substrate S8).

Section 4.3 of the paper migrates topic-node influence to representative
nodes by treating the first representative node encountered on a sampled
walk as an *absorbing state* of an absorbing Markov chain: once entered, the
walk (conceptually) never leaves it, so only the first hit matters. These
helpers extract first-hit events and distances from recorded walks.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Set, Tuple

import numpy as np

from .engine import WalkRecord

__all__ = ["first_absorption", "absorption_distances", "closeness_from_distance"]


def first_absorption(
    record: WalkRecord, absorbers: Set[int]
) -> Optional[Tuple[int, int]]:
    """First absorber on the walk and its hop distance from the start.

    Parameters
    ----------
    record:
        A walk record whose ``path[0]`` is the start node.
    absorbers:
        The absorbing node set (e.g. a topic's representative nodes).

    Returns
    -------
    ``(node, distance)`` for the first path position (excluding the start)
    occupied by an absorber, or ``None`` when the walk never hits one. The
    path stores first-visit order, so the position *is* the number of hops
    at which the walk first reached that node.
    """
    path = record.path
    for position in range(1, path.size):
        node = int(path[position])
        if node in absorbers:
            return node, position
    return None


def absorption_distances(
    records: Iterable[WalkRecord], absorbers: Set[int]
) -> dict:
    """Minimum first-hit distance per absorber over many walks.

    Returns a mapping ``absorber -> smallest hop distance`` across all walks
    in *records* that were absorbed. Walks that never hit an absorber
    contribute nothing.
    """
    best: dict = {}
    for record in records:
        hit = first_absorption(record, absorbers)
        if hit is None:
            continue
        node, distance = hit
        if node not in best or distance < best[node]:
            best[node] = distance
    return best


def closeness_from_distance(distance: int) -> float:
    """The paper's closeness kernel ``1 / (D + 1)`` (§4.3)."""
    if distance < 0:
        raise ValueError(f"distance must be >= 0, got {distance}")
    return 1.0 / (distance + 1.0)
