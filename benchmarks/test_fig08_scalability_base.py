"""Figure 8 - scalability across all four datasets (base rep budget).

Paper shape: RCL-A/LRW-A nearly flat in dataset size; the baselines
degrade; data_1.2m is *slower* than data_3m for the expansion-bound
methods because its average degree is much higher.
"""

from .test_fig05_time_small import _parse
from .conftest import emit


def test_fig08_scalability(suite, benchmark):
    table = benchmark.pedantic(suite.fig08_scalability, rounds=1, iterations=1)
    emit(table)
    rows = {row[0]: [_parse(c) for c in row[1:]] for row in table.rows}
    datasets = table.headers[1:]
    # Engines stay sub-5s on every dataset in the bench profile.
    assert max(rows["LRW-A"]) < 5.0
    # The exhaustive baseline cost grows with dataset scale.
    assert rows["BaseDijkstra"][-1] > rows["BaseDijkstra"][0]
