#!/usr/bin/env python
"""Scenario-suite benchmark: every catalogued workload, graded and gated.

Runs the full :mod:`repro.scenarios` catalogue through the engine-mode
replay (deterministic: results digest, answer-cache trajectory, event
outcomes), the two adversarial scenarios additionally through a live
daemon on a loopback socket, and one scenario twice to prove run-to-run
determinism. Writes ``BENCH_scenarios.json``.

Gates:

* ``all_scenarios_ok`` - every run's own gates passed (brute-force
  oracle precision 1.0 with float-tolerance influence error, calibrated
  summarized precision floor, reload/stale-precompute semantics,
  answer-cache hits where the trace repeats itself);
* ``deterministic_replay`` - two engine-mode runs of the same
  (scenario, seed, profile) produce identical deterministic report
  views, trace digest included;
* ``daemon_zero_5xx`` - the adversarial daemon replays (flash-crowd
  spike against a 16-slot admission queue, topic-churn storm of
  mid-replay reloads) answered or shed every request; nothing 5xx'd.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_scenarios.py
    PYTHONPATH=src python benchmarks/bench_scenarios.py --smoke

``--smoke`` switches every scenario to its "smoke" profile for CI.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.scenarios import deterministic_view, list_scenarios, run_scenario

#: The scenario replayed twice for the determinism gate (the cheapest).
DETERMINISM_SCENARIO = "phone-recommendation"


def _summarize(report: dict) -> dict:
    """The per-run slice that lands in BENCH_scenarios.json."""
    row = {
        "scenario": report["scenario"],
        "mode": report["mode"],
        "seed": report["seed"],
        "profile": report["profile"],
        "adversarial": report["adversarial"],
        "trace_digest": report["trace"]["digest"],
        "n_requests": report["trace"]["n_requests"],
        "n_events": report["trace"]["n_events"],
        "quality": {
            "exact_precision": report["quality"]["exact"]["precision"],
            "max_influence_error": (
                report["quality"]["exact"]["max_influence_error"]
            ),
            "summarized_precision": (
                report["quality"]["summarized"]["precision"]
            ),
        },
        "gates": report["gates"],
        "ok": report["ok"],
        "wall_seconds": report["timing"]["wall_seconds"],
    }
    if report["replay"] is not None:
        row["results_digest"] = report["replay"]["results_digest"]
        row["answer_cache"] = report["replay"]["answer_cache"]
    if report["daemon"] is not None:
        row["statuses"] = report["daemon"]["statuses"]
        row["shed"] = report["daemon"]["shed"]
        row["server_errors"] = report["daemon"]["server_errors"]
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="run every scenario at its 'smoke' profile")
    parser.add_argument("--output", default=None, metavar="PATH",
                        help="result JSON path (default "
                             "benchmarks/BENCH_scenarios.json)")
    args = parser.parse_args(argv)
    profile = "smoke" if args.smoke else "default"

    runs = []
    all_ok = True
    for scenario in list_scenarios():
        report = run_scenario(
            scenario.name, profile=profile, mode="engine"
        )
        runs.append(_summarize(report))
        all_ok &= report["ok"]
        print(f"engine {scenario.name:24s} ok={report['ok']} "
              f"wall={report['timing']['wall_seconds']}s", flush=True)

    daemon_5xx = 0
    for scenario in list_scenarios():
        if not scenario.adversarial:
            continue
        report = run_scenario(
            scenario.name, profile=profile, mode="daemon"
        )
        runs.append(_summarize(report))
        all_ok &= report["ok"]
        daemon_5xx += report["daemon"]["server_errors"]
        print(f"daemon {scenario.name:24s} ok={report['ok']} "
              f"statuses={report['daemon']['statuses']}", flush=True)

    first = deterministic_view(
        run_scenario(DETERMINISM_SCENARIO, profile=profile, mode="engine")
    )
    second = deterministic_view(
        run_scenario(DETERMINISM_SCENARIO, profile=profile, mode="engine")
    )
    deterministic = json.dumps(first, sort_keys=True) == json.dumps(
        second, sort_keys=True
    )
    print(f"determinism ({DETERMINISM_SCENARIO} twice): {deterministic}",
          flush=True)

    gates = {
        "all_scenarios_ok": all_ok,
        "deterministic_replay": deterministic,
        "daemon_zero_5xx": daemon_5xx == 0,
    }
    payload = {
        "schema": "repro.bench/scenarios/v1",
        "profile": profile,
        "runs": runs,
        "gates": gates,
        "ok": all(gates.values()),
    }
    output = Path(
        args.output
        if args.output
        else Path(__file__).parent / "BENCH_scenarios.json"
    )
    output.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {output}")

    if not payload["ok"]:
        failed = [name for name, ok in gates.items() if not ok]
        print(f"GATES FAILED: {', '.join(failed)}", file=sys.stderr)
        return 1
    print("all gates passed: every scenario oracle-gated, deterministic, "
          "and daemon-survivable")
    return 0


if __name__ == "__main__":
    sys.exit(main())
