"""Figure 11 - precision vs BasePropagation on the scaled data_3m.

Paper shape: LRW-A above 0.8, RCL-A below it, BaseDijkstra lowest.
"""

from .conftest import emit


def test_fig11_precision_large(suite, benchmark):
    table = benchmark.pedantic(
        suite.fig11_effectiveness_large, rounds=1, iterations=1
    )
    emit(table)
    last_k = {row[0]: float(row[-1]) for row in table.rows}
    assert last_k["LRW-A"] > 0.1
    assert last_k["RCL-A"] > 0.1
