"""Figure 10 - precision vs the BaseMatrix ground truth on data_2k.

Paper shape: BasePropagation and LRW-A around 0.85, RCL-A around 0.7,
BaseDijkstra lowest. At laptop scale the absolute numbers shift (topics
are far smaller than the paper's 20k-node topics, so every summary is
coarser); EXPERIMENTS.md discusses the deltas - the assertion here is the
robust part: the theta-index methods clearly beat random and
BasePropagation tracks the ground truth closely.
"""

from .conftest import emit


def test_fig10_precision_small(suite, benchmark):
    table = benchmark.pedantic(
        suite.fig10_effectiveness_small, rounds=1, iterations=1
    )
    emit(table)
    last_k = {row[0]: float(row[-1]) for row in table.rows}
    assert last_k["BasePropagation"] >= 0.5
    assert last_k["LRW-A"] > 0.1     # comfortably above random
    assert last_k["RCL-A"] > 0.1
