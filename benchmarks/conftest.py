"""Shared benchmark fixtures.

The bench profile shrinks the scaled datasets further (so a full
``pytest benchmarks/ --benchmark-only`` run finishes on a laptop) while
keeping every structural ratio from DESIGN.md section 3: the degree-band
ordering across datasets, representatives as a fraction of topic size, and
k as a fraction of the per-query topic count. EXPERIMENTS.md records this
profile next to every committed number.
"""

from __future__ import annotations

import pytest

from repro.evaluation import ExperimentConfig, ExperimentSuite

#: Bench-profile node counts (paper sizes in DESIGN.md section 3). Sized
#: for a single-core CI runner; scale these up freely on real hardware -
#: every structural ratio is preserved by construction.
BENCH_SIZES = {
    "data_2k": 800,
    "data_350k": 1000,
    "data_1.2m": 1200,
    "data_3m": 1600,
}


def bench_config() -> ExperimentConfig:
    """The committed bench profile."""
    return ExperimentConfig(
        seed=42,
        n_queries=2,
        n_users=1,
        samples_per_node=10,
        deviation_budget=25,
        dataset_sizes=dict(BENCH_SIZES),
    )


@pytest.fixture(scope="session")
def suite() -> ExperimentSuite:
    """One suite per session so datasets/engines are built once."""
    return ExperimentSuite(bench_config())


def emit(table) -> None:
    """Print a figure table under a visible separator."""
    print()
    print("=" * 72)
    print(table.render())
    print("=" * 72)
