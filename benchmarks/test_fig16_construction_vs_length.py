"""Figure 16 - summary construction time as L grows.

Paper shape: RCL-A's time rises steeply with L (larger groups make the
centroid computation expensive); LRW-A changes much less.
"""

from .test_fig05_time_small import _parse
from .conftest import emit


def test_fig16_construction_vs_length(suite, benchmark):
    table = benchmark.pedantic(
        lambda: suite.fig16_construction_vs_length(
            lengths=(2, 3, 4, 5), topics=2
        ),
        rounds=1,
        iterations=1,
    )
    emit(table)
    rcl = [_parse(row[1]) for row in table.rows]
    lrw = [_parse(row[2]) for row in table.rows]
    # LRW-A's growth from smallest to largest L stays well below RCL-A's.
    assert rcl[-1] > lrw[-1]
