"""Figure 6 - PIT-Search time on the scaled data_3m (BaseMatrix omitted).

Paper shape: BaseDijkstra ~25 h, BasePropagation ~6.6 min, RCL-A/LRW-A
~230 ms; engine time grows only slowly with k.
"""

from .test_fig05_time_small import _parse
from .conftest import emit


def test_fig06_time_large(suite, benchmark):
    table = benchmark.pedantic(
        suite.fig06_time_large, rounds=1, iterations=1
    )
    emit(table)
    rows = {row[0]: [_parse(c) for c in row[1:]] for row in table.rows}
    # Exhaustive baseline much slower than the summarized engines. (The
    # margin shrinks with the CI profile's deviation budget; 5x is robust
    # at every profile, the paper's full-scale gap is ~400,000x.)
    assert rows["BaseDijkstra"][0] > 5 * rows["LRW-A"][0]
    # Engines stay fast across every k (the paper's "insensitive to k").
    assert max(rows["LRW-A"]) < 5.0
    assert max(rows["RCL-A"]) < 5.0
