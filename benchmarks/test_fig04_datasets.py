"""Figure 4 - dataset summary table (scaled analogues)."""

from .conftest import emit


def test_fig04_dataset_table(suite, benchmark):
    table = benchmark.pedantic(
        suite.fig04_datasets, rounds=1, iterations=1
    )
    emit(table)
    assert len(table.rows) == 4
    # The mid dataset must keep the highest average degree (paper §6.3).
    avg = {row[0]: float(row[3]) for row in table.rows}
    assert avg["data_1.2m"] > avg["data_3m"]
    assert avg["data_1.2m"] > avg["data_350k"]
