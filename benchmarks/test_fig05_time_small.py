"""Figure 5 - PIT-Search time on data_2k, all five methods.

Paper shape: BaseMatrix (hours) >> BaseDijkstra (minutes) >>
BasePropagation (100 ms) >> RCL-A ~ LRW-A (20 ms), all insensitive to k.
"""

from repro.evaluation.reporting import format_seconds

from .conftest import emit


def _parse(cell: str) -> float:
    """Invert format_seconds for shape assertions."""
    if cell.endswith("us"):
        return float(cell[:-2]) / 1e6
    if cell.endswith("ms"):
        return float(cell[:-2]) / 1e3
    if cell.endswith("min"):
        return float(cell[:-3]) * 60.0
    return float(cell[:-1])


def test_fig05_time_small(suite, benchmark):
    table = benchmark.pedantic(
        suite.fig05_time_small, rounds=1, iterations=1
    )
    emit(table)
    first_k = {row[0]: _parse(row[1]) for row in table.rows}
    # The paper's headline ordering: exhaustive baselines slowest, index
    # methods fastest. BaseMatrix and BaseDijkstra must both dominate the
    # summarized engines by a wide margin. (BasePropagation's position
    # relative to the engines is scale-dependent - see EXPERIMENTS.md -
    # so only its vast advantage over the exhaustive methods is asserted.)
    assert first_k["BaseMatrix"] > 10 * first_k["LRW-A"]
    assert first_k["BaseDijkstra"] > 10 * first_k["LRW-A"]
    assert first_k["BaseMatrix"] > 10 * first_k["BasePropagation"]
