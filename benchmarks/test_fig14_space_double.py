"""Figure 14 - space cost with double the representative budget.

Paper shape: doubling the representative sets does not change the space
picture materially; RCL-A/LRW-A stay below the baselines.
"""

from .test_fig13_space_base import _bytes
from .conftest import emit


def test_fig14_space_double_reps(suite, benchmark):
    table = benchmark.pedantic(
        suite.fig14_space_double_reps, rounds=1, iterations=1
    )
    emit(table)
    rows = {row[0]: row[1:] for row in table.rows}
    # Summarized methods remain cheaper than the exhaustive matrix method.
    assert _bytes(rows["BaseMatrix"][0]) > _bytes(rows["LRW-A"][0])
