#!/usr/bin/env python
"""Propagation-index construction benchmark (Figures 13-16 offline cost).

Times three ways of materializing the full §5.1 index on a seeded
synthetic graph and writes ``BENCH_propagation_index.json``:

* ``legacy`` - the pre-PR pure-Python branch expansion (BFS deque,
  per-push ``frozenset`` branch copies, per-pop ``in_edges()``), embedded
  below as the fixed reference point;
* ``serial`` - the current CSR-native DFS build (``workers=1``);
* ``parallel`` - the same build sharded over worker processes.

The emitted JSON carries entries/sec, peak entry bytes, and the
serial/parallel speedups over the legacy baseline, plus a parity check
(max |Γ| deviation between legacy and current on sampled nodes).

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_propagation_index.py
    PYTHONPATH=src python benchmarks/bench_propagation_index.py --smoke

``--smoke`` shrinks the graph for CI: it only proves the harness runs and
produces valid JSON, not a meaningful speedup.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import warnings
from collections import deque
from pathlib import Path
from time import perf_counter
from typing import Dict, Set

from repro.core import PropagationIndex
from repro.core.propagation import PropagationEntry
from repro.exceptions import BudgetExceededError
from repro.graph import SocialGraph, preferential_attachment_graph


class LegacyPropagationIndex(PropagationIndex):
    """The pre-PR ``_build_entry``, kept verbatim as the benchmark baseline.

    BFS over a deque whose items carry a ``frozenset`` of branch members
    (copied on every push) and call ``graph.in_edges()`` on every pop.
    Budget note: the legacy loop counted a branch *after* popping it, so
    the extension that trips the budget was popped and dropped; the
    current implementation counts before consuming - the resulting Γ is
    identical, only the ``branches`` diagnostic differs by one on
    truncated entries.
    """

    def _build_entry(self, target: int) -> PropagationEntry:
        theta = self._theta
        graph = self._graph
        gamma: Dict[int, float] = {}
        branches = 0
        queue: deque = deque()
        root_set = frozenset((target,))
        sources, probs = graph.in_edges(target)
        for source, probability in zip(sources, probs):
            probability = float(probability)
            if probability >= theta:
                queue.append((int(source), probability, root_set))
        truncated = False
        while queue:
            node, probability, branch = queue.popleft()
            branches += 1
            if branches > self._max_branches:
                if self._strict:
                    raise BudgetExceededError(
                        f"propagation entry of node {target}", self._max_branches
                    )
                truncated = True
                break
            gamma[node] = gamma.get(node, 0.0) + probability
            extended = branch | {node}
            sources, probs = graph.in_edges(node)
            for source, edge_probability in zip(sources, probs):
                source = int(source)
                if source in extended or source == target:
                    continue
                extended_probability = probability * float(edge_probability)
                if extended_probability >= theta:
                    queue.append((source, extended_probability, extended))
        if truncated:
            warnings.warn(
                f"propagation entry of node {target} truncated at "
                f"{self._max_branches} branches (theta={theta})",
                RuntimeWarning,
                stacklevel=3,
            )
        marked = self._legacy_mark_potential(target, gamma)
        return PropagationEntry(target, gamma, marked, branches)

    def _legacy_mark_potential(
        self, target: int, gamma: Dict[int, float]
    ) -> Set[int]:
        inside = set(gamma)
        inside.add(target)
        marked: Set[int] = set()
        for node in gamma:
            for source in self._graph.in_neighbors(node):
                if int(source) not in inside:
                    marked.add(node)
                    break
        return marked


def _timed_build(index: PropagationIndex, workers: int) -> float:
    start = perf_counter()
    if isinstance(index, LegacyPropagationIndex):
        for node in range(index.graph.n_nodes):
            index.entry(node)
    else:
        index.build_all(workers=workers)
    return perf_counter() - start


def _report(index: PropagationIndex, seconds: float) -> Dict[str, float]:
    n = index.graph.n_nodes
    entries = [index.entry(node) for node in range(n)]
    return {
        "seconds": seconds,
        "entries": n,
        "entries_per_second": n / seconds if seconds > 0 else 0.0,
        "total_branches": sum(e.branches for e in entries),
        "total_members": sum(e.size for e in entries),
        "peak_entry_bytes": max(e.memory_bytes() for e in entries),
        "total_bytes": index.memory_bytes(),
    }


def _parity(legacy: PropagationIndex, current: PropagationIndex, step: int) -> Dict:
    """Max |Γ| deviation between the two builds on every *step*-th node."""
    max_diff = 0.0
    checked = 0
    marked_equal = True
    for node in range(0, legacy.graph.n_nodes, step):
        a, b = legacy.entry(node), current.entry(node)
        keys_a, keys_b = set(a.gamma), set(b.gamma)
        if keys_a != keys_b:
            return {"checked": checked, "max_gamma_diff": float("inf"),
                    "marked_equal": False}
        for key in keys_a:
            max_diff = max(max_diff, abs(a.gamma[key] - b.gamma[key]))
        marked_equal = marked_equal and a.marked == b.marked
        checked += 1
    return {"checked": checked, "max_gamma_diff": max_diff,
            "marked_equal": marked_equal}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=5000)
    parser.add_argument("--out-degree", type=int, default=6)
    parser.add_argument("--theta", type=float, default=0.002)
    parser.add_argument("--max-branches", type=int, default=200_000)
    parser.add_argument("--workers", type=int, default=0,
                        help="parallel stage worker count (0 = all CPUs)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI profile (300 nodes)")
    parser.add_argument("--output", default=None,
                        help="JSON destination (default: "
                             "benchmarks/BENCH_propagation_index.json)")
    args = parser.parse_args(argv)

    if args.smoke:
        args.nodes = min(args.nodes, 300)
    workers = args.workers or (
        getattr(os, "process_cpu_count", os.cpu_count)() or 1
    )
    if workers < 2:
        workers = 2  # still exercise the process-pool path on 1-CPU boxes

    print(f"graph: {args.nodes} nodes, out-degree {args.out_degree}, "
          f"seed {args.seed}", flush=True)
    graph = preferential_attachment_graph(
        args.nodes, args.out_degree, seed=args.seed
    )
    common = dict(theta=args.theta, max_branches=args.max_branches)

    legacy = LegacyPropagationIndex(graph, **common)
    legacy_s = _timed_build(legacy, 1)
    print(f"legacy serial : {legacy_s:8.3f}s", flush=True)

    serial = PropagationIndex(graph, **common)
    serial_s = _timed_build(serial, 1)
    print(f"new serial    : {serial_s:8.3f}s "
          f"({legacy_s / serial_s:.2f}x vs legacy)", flush=True)

    parallel = PropagationIndex(graph, **common)
    parallel_s = _timed_build(parallel, workers)
    print(f"new parallel  : {parallel_s:8.3f}s ({workers} workers, "
          f"{legacy_s / parallel_s:.2f}x vs legacy)", flush=True)

    parity = _parity(legacy, serial, step=max(1, args.nodes // 200))
    payload = {
        "benchmark": "propagation_index_construction",
        "config": {
            "n_nodes": graph.n_nodes,
            "n_edges": graph.n_edges,
            "out_degree": args.out_degree,
            "theta": args.theta,
            "max_branches": args.max_branches,
            "seed": args.seed,
            "workers": workers,
            "cpu_count": os.cpu_count(),
            "smoke": args.smoke,
        },
        "legacy_serial": _report(legacy, legacy_s),
        "serial": _report(serial, serial_s),
        "parallel": _report(parallel, parallel_s),
        "speedup": {
            "serial_vs_legacy": legacy_s / serial_s,
            "parallel_vs_legacy": legacy_s / parallel_s,
            "parallel_vs_serial": serial_s / parallel_s,
        },
        "parity_legacy_vs_serial": parity,
        "build_stats_parallel": parallel.last_build_stats.as_dict(),
    }
    output = Path(
        args.output
        if args.output is not None
        else Path(__file__).parent / "BENCH_propagation_index.json"
    )
    output.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {output}")

    if parity["max_gamma_diff"] > 1e-9 or not parity["marked_equal"]:
        print("PARITY FAILURE between legacy and current builds",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
