"""Figure 13 - peak allocation while searching (base rep budget).

Paper shape: BaseMatrix consumes dramatically more space than every other
method (120 GB at full scale, hence measured only on the small dataset);
the index-based methods stay modest, growing with dataset size.
"""

from .conftest import emit


def _bytes(cell: str) -> float:
    for suffix, factor in (("GB", 2**30), ("MB", 2**20), ("KB", 2**10), ("B", 1)):
        if cell.endswith(suffix):
            return float(cell[: -len(suffix)]) * factor
    raise ValueError(cell)


def test_fig13_space(suite, benchmark):
    table = benchmark.pedantic(suite.fig13_space, rounds=1, iterations=1)
    emit(table)
    rows = {row[0]: row[1:] for row in table.rows}
    # BaseMatrix dwarfs the engines on the small dataset...
    assert _bytes(rows["BaseMatrix"][0]) > 5 * _bytes(rows["LRW-A"][0])
    # ...and is marked infeasible on the larger ones, as in the paper.
    assert all("n/a" in cell for cell in rows["BaseMatrix"][1:])
