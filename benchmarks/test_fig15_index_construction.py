"""Figure 15 - per-topic summary construction cost.

Paper shape: RCL-A needs minutes per topic and is insensitive to the
sample rate (centroid computation dominates); LRW-A needs seconds per
topic and is insensitive to R.
"""

from .test_fig05_time_small import _parse
from .conftest import emit


def test_fig15_summary_construction(suite, benchmark):
    rcl_table, lrw_table = benchmark.pedantic(
        lambda: suite.fig15_index_construction(
            sample_rates=(0.01, 0.05, 0.1), r_values=(5, 10, 15), topics=2
        ),
        rounds=1,
        iterations=1,
    )
    emit(rcl_table)
    emit(lrw_table)
    rcl_times = [_parse(row[1]) for row in rcl_table.rows]
    lrw_times = [_parse(row[1]) for row in lrw_table.rows]
    # RCL-A construction is slower than LRW-A at every setting (the
    # paper's 450-560 s vs 14 s contrast).
    assert min(rcl_times) > max(lrw_times)
