#!/usr/bin/env python
"""Serving-daemon load benchmark: sheds under overload, never collapses.

Stands up the real ``pit-search serve`` daemon (in-process, real sockets)
over prebuilt artifacts, replays a Zipf-skewed workload against it, and
writes ``BENCH_serve.json``. Two phases:

* **capacity** - a gentle closed loop (2 client threads) measuring the
  daemon's unloaded service time and p50/p99 latency;
* **overload** - 2x as many client threads as the admission queue has
  slots, all firing back-to-back. A correctly admission-controlled
  server answers what it can and *sheds the rest with 429* - so the
  gates are: sheds happened, success p99 stays bounded by roughly
  (queue depth x service time), nothing 5xx'd, and ``/healthz`` +
  ``/readyz`` still answer 200 afterwards with an empty queue. An
  uncontrolled server would instead queue unboundedly: latency grows
  with client count and every caller eventually times out.

Mid-overload the bench also fires one hot ``POST /admin/reload`` and
requires it to succeed with zero dropped or 5xx'd requests (responses
flip from generation 1 to 2 under full load).

The workload reuses :func:`repro.datasets.replay_requests` (Zipf over
``generate_workload`` pairs, p proportional to rank^-skew) and round-trips
through the same JSONL format ``pit-search search --batch`` consumes, so
one replay file drives both the offline batch path and the daemon.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_serve.py
    PYTHONPATH=src python benchmarks/bench_serve.py --smoke

``--smoke`` shrinks the dataset and request counts for CI: it proves the
daemon starts, serves, sheds, reloads, and drains - not absolute QPS.
"""

from __future__ import annotations

import argparse
import asyncio
import http.client
import json
import os
import sys
import tempfile
import threading
from pathlib import Path
from time import monotonic, perf_counter
from typing import Dict, List

from repro.core import (
    PITEngine,
    ServingEngine,
    save_propagation_index,
    save_summaries,
)
from repro.datasets import (
    data_2k,
    generate_workload,
    replay_requests,
    write_replay_jsonl,
)
from repro.obs import MetricsRegistry
from repro.serve import PITServer, ServeConfig

#: Success p99 under overload must stay below SAFETY x (queue+1) x mean
#: unloaded service time - i.e. bounded by the queue the server chose,
#: not by how many clients pile on.
SAFETY = 6.0
P99_FLOOR_S = 0.25  # timer-resolution floor for tiny smoke runs


class BenchDaemon:
    """The in-process daemon harness (same shape as the test suite's)."""

    def __init__(self, loader, config: ServeConfig):
        self.registry = MetricsRegistry()
        self.server = PITServer(loader, config, metrics=self.registry)
        self._ready = threading.Event()
        self.exit_code = None
        self._thread = threading.Thread(target=self._main, daemon=True)

    def _main(self):
        self.exit_code = asyncio.run(
            self.server.run(ready_callback=self._ready.set)
        )

    def start(self):
        self._thread.start()
        if not self._ready.wait(300):
            raise RuntimeError("daemon did not become ready")
        return self

    def stop(self) -> int:
        self.server.request_shutdown(0)
        self._thread.join(60)
        if self._thread.is_alive():
            raise RuntimeError("daemon did not drain")
        return self.exit_code


class ReplayClient:
    """Keep-alive replay client: one persistent connection per worker.

    The previous replay client opened a fresh TCP connection per request,
    so every latency sample paid connect/teardown cost the daemon's
    keep-alive framing was built to avoid - and under overload the
    accept backlog, not admission control, became the first bottleneck.
    One ``HTTPConnection`` per worker thread reuses the socket across
    requests (including 4xx responses, which the daemon answers without
    closing). A request that trips over a stale connection - the daemon
    closed it between requests - reconnects and retries once; a request
    that was answered with ``Connection: close`` just reconnects lazily
    on the next call.
    """

    def __init__(self, port: int, timeout: float = 30.0):
        self._port = port
        self._timeout = timeout
        self._conn = None

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def post_search(self, record: Dict):
        """One search; returns (status, latency_s, generation|None)."""
        body = json.dumps(record)
        start = perf_counter()
        for attempt in (0, 1):
            conn = self._conn
            if conn is None:
                conn = self._conn = http.client.HTTPConnection(
                    "127.0.0.1", self._port, timeout=self._timeout
                )
            try:
                conn.request(
                    "POST", "/search", body=body,
                    headers={"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                data = response.read()
            except (http.client.HTTPException, OSError):
                self.close()
                if attempt:
                    raise
                continue
            latency = perf_counter() - start
            generation = None
            if response.status == 200:
                generation = json.loads(data).get("generation")
            if response.will_close:
                self.close()
            return response.status, latency, generation
        raise RuntimeError("unreachable")  # pragma: no cover


def simple_get(port: int, path: str):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


def percentile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


def run_phase(port: int, records: List[Dict], n_clients: int) -> Dict:
    """Closed-loop replay: *n_clients* threads drain *records* together."""
    lock = threading.Lock()
    cursor = {"i": 0}
    latencies: List[float] = []
    statuses: Dict[int, int] = {}
    generations = set()

    def worker():
        client = ReplayClient(port)
        try:
            while True:
                with lock:
                    i = cursor["i"]
                    if i >= len(records):
                        return
                    cursor["i"] = i + 1
                status, latency, generation = client.post_search(records[i])
                with lock:
                    statuses[status] = statuses.get(status, 0) + 1
                    if status == 200:
                        latencies.append(latency)
                        generations.add(generation)
        finally:
            client.close()

    threads = [threading.Thread(target=worker) for _ in range(n_clients)]
    start = monotonic()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = monotonic() - start
    latencies.sort()
    successes = statuses.get(200, 0)
    return {
        "clients": n_clients,
        "requests": len(records),
        "seconds": elapsed,
        "statuses": {str(k): v for k, v in sorted(statuses.items())},
        "success_count": successes,
        "shed_count": statuses.get(429, 0),
        "server_error_count": sum(
            v for k, v in statuses.items() if k >= 500
        ),
        "success_qps": successes / elapsed if elapsed > 0 else 0.0,
        "mean_latency_ms": (
            1000.0 * sum(latencies) / len(latencies) if latencies else 0.0
        ),
        "p50_ms": 1000.0 * percentile(latencies, 0.50),
        "p99_ms": 1000.0 * percentile(latencies, 0.99),
        "generations_seen": sorted(g for g in generations if g is not None),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=600)
    parser.add_argument("--queries", type=int, default=12)
    parser.add_argument("--users", type=int, default=8)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--skew", type=float, default=1.1,
                        help="Zipf exponent of the replay mix")
    parser.add_argument("--capacity-requests", type=int, default=300)
    parser.add_argument("--overload-requests", type=int, default=900)
    parser.add_argument("--max-queue", type=int, default=16,
                        help="daemon admission capacity; overload drives "
                             "2x this many client threads")
    parser.add_argument("--summarizer", default="rcl", choices=["lrw", "rcl"])
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI profile")
    parser.add_argument("--output", default=None,
                        help="JSON destination (default: "
                             "benchmarks/BENCH_serve.json)")
    args = parser.parse_args(argv)

    if args.smoke:
        args.nodes = min(args.nodes, 250)
        args.queries = min(args.queries, 5)
        args.users = min(args.users, 3)
        args.capacity_requests = min(args.capacity_requests, 40)
        args.overload_requests = min(args.overload_requests, 150)
        args.max_queue = min(args.max_queue, 4)

    overload_clients = 2 * args.max_queue

    print(f"dataset: data_2k({args.nodes} nodes), workload "
          f"{args.queries} queries x {args.users} users, "
          f"skew={args.skew}, k={args.k}", flush=True)
    bundle = data_2k(seed=args.seed, n_nodes=args.nodes, with_corpus=False)
    engine = PITEngine.from_dataset(
        bundle, summarizer=args.summarizer, seed=args.seed
    )
    workers = max(1, min(4, os.cpu_count() or 1))
    engine.propagation_index.build_all(workers=workers)
    engine.build_summaries(workers=workers)

    tmp = tempfile.TemporaryDirectory(prefix="bench_serve_")
    artifact_dir = Path(tmp.name)
    index_path = artifact_dir / "prop.npz"
    sums_path = artifact_dir / "sums.json"
    save_propagation_index(engine.propagation_index, index_path)
    save_summaries(engine.summaries, bundle.graph, sums_path)
    print(f"artifacts built -> {artifact_dir}", flush=True)

    # Zipf replay stream, round-tripped through the --batch JSONL format.
    workload = generate_workload(
        bundle, n_queries=args.queries, n_users=args.users, seed=args.seed
    )
    replay_path = artifact_dir / "replay.jsonl"
    total = args.capacity_requests + args.overload_requests
    records = replay_requests(
        workload, n_requests=total, k=args.k, skew=args.skew, seed=args.seed
    )
    write_replay_jsonl(records, replay_path)
    records = [
        json.loads(line) for line in replay_path.read_text().splitlines()
    ]
    capacity_records = records[: args.capacity_requests]
    overload_records = records[args.capacity_requests:]

    registry_holder = {}

    def loader(overrides):
        paths = {"summaries": str(sums_path), "index": str(index_path)}
        paths.update(overrides)
        return ServingEngine.from_artifacts(
            bundle.graph, bundle.topic_index, paths["summaries"],
            index_path=paths.get("index"),
            metrics=registry_holder["registry"],
        )

    config = ServeConfig(port=0, max_queue=args.max_queue)
    daemon = BenchDaemon(loader, config)
    registry_holder["registry"] = daemon.registry
    daemon.start()
    port = daemon.server.port
    print(f"daemon ready on 127.0.0.1:{port}", flush=True)

    # Phase 1: capacity - 2 gentle closed-loop clients.
    capacity = run_phase(port, capacity_records, n_clients=2)
    mean_service_s = capacity["mean_latency_ms"] / 1000.0
    print(f"capacity: {capacity['success_qps']:.1f} QPS, "
          f"p50 {capacity['p50_ms']:.2f}ms p99 {capacity['p99_ms']:.2f}ms",
          flush=True)

    # Phase 2: overload - 2x max_queue clients, plus one hot reload
    # fired mid-storm.
    reload_result = {}

    def hot_reload():
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
        try:
            conn.request("POST", "/admin/reload", body="{}")
            response = conn.getresponse()
            reload_result["status"] = response.status
            reload_result["body"] = json.loads(response.read())
        finally:
            conn.close()

    reload_timer = threading.Timer(
        max(0.2, 0.2 * capacity["seconds"]), hot_reload
    )
    reload_timer.start()
    overload = run_phase(port, overload_records, n_clients=overload_clients)
    reload_timer.join()
    print(f"overload ({overload_clients} clients vs queue "
          f"{args.max_queue}): {overload['success_count']} ok, "
          f"{overload['shed_count']} shed (429), "
          f"p99 {overload['p99_ms']:.2f}ms", flush=True)

    p99_bound_s = max(
        P99_FLOOR_S, SAFETY * (args.max_queue + 1) * mean_service_s
    )
    healthz_status, _ = simple_get(port, "/healthz")
    readyz_status, _ = simple_get(port, "/readyz")
    metrics_status, metrics_text = simple_get(port, "/metrics")
    snapshot = daemon.registry.snapshot()
    serve_counters = {
        name: value for name, value in sorted(snapshot.counters.items())
        if name.startswith("serve.")
    }
    final_queue_depth = snapshot.gauges.get("serve.queue_depth", 0.0)
    exit_code = daemon.stop()
    tmp.cleanup()

    gates = {
        "sheds_under_overload": overload["shed_count"] > 0,
        "success_p99_bounded": (
            overload["p99_ms"] / 1000.0 <= p99_bound_s
        ),
        "no_server_errors": (
            capacity["server_error_count"] == 0
            and overload["server_error_count"] == 0
        ),
        "hot_reload_ok": reload_result.get("status") == 200,
        "reload_generation_advanced": (
            reload_result.get("body", {}).get("generation") == 2
        ),
        "healthz_ok_after_storm": healthz_status == 200,
        "readyz_ok_after_storm": readyz_status == 200,
        "metrics_ok_after_storm": (
            metrics_status == 200 and b"serve_requests" in metrics_text
        ),
        "queue_drained": final_queue_depth == 0.0,
        "clean_exit": exit_code == 0,
    }

    payload = {
        "benchmark": "serve",
        "config": {
            "n_nodes": bundle.graph.n_nodes,
            "n_edges": bundle.graph.n_edges,
            "n_topics": bundle.topic_index.n_topics,
            "n_queries": args.queries,
            "n_users": args.users,
            "k": args.k,
            "skew": args.skew,
            "summarizer": args.summarizer,
            "max_queue": args.max_queue,
            "overload_clients": overload_clients,
            "capacity_requests": args.capacity_requests,
            "overload_requests": args.overload_requests,
            "seed": args.seed,
            "cpu_count": os.cpu_count(),
            "smoke": args.smoke,
        },
        "capacity": capacity,
        "overload": overload,
        "p99_bound_ms": 1000.0 * p99_bound_s,
        "reload": reload_result,
        "serve_counters": serve_counters,
        "final_queue_depth": final_queue_depth,
        "exit_code": exit_code,
        "gates": gates,
        "ok": all(gates.values()),
    }
    output = Path(
        args.output
        if args.output is not None
        else Path(__file__).parent / "BENCH_serve.json"
    )
    output.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {output}")

    if not payload["ok"]:
        failed = [name for name, ok in gates.items() if not ok]
        print(f"GATE FAILURE: {', '.join(failed)}", file=sys.stderr)
        return 1
    print("all gates passed: daemon sheds under 2x overload and stays "
          "responsive", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
