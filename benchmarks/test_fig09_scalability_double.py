"""Figure 9 - scalability with double the representative budget.

Paper shape: doubling the representatives does not noticeably change the
engines' query time relative to Figure 8.
"""

from .test_fig05_time_small import _parse
from .conftest import emit


def test_fig09_scalability_double_reps(suite, benchmark):
    table = benchmark.pedantic(
        suite.fig09_scalability_double_reps, rounds=1, iterations=1
    )
    emit(table)
    rows = {row[0]: [_parse(c) for c in row[1:]] for row in table.rows}
    assert max(rows["LRW-A"]) < 10.0
    assert max(rows["RCL-A"]) < 10.0
