#!/usr/bin/env python
"""Answer-cache benchmark: precompute + tiered caches vs. plain serving.

Builds one serving stack (same shape as ``bench_serve.py``), mines a Zipf
workload trace into a ``pit-search precompute`` artifact, then replays the
2x-overload storm twice against the real daemon:

* **uncached** - the PR 7 configuration: no answer tier, every request
  recomputed (plans/entries/summaries still cached, as before);
* **cached** - answer tier enabled and warm-loaded from the precompute
  artifact.

Both storms fire one hot ``POST /admin/reload`` the moment the replay
cursor crosses its midpoint (cursor-triggered, not wall-clock, so the
generation bump always lands mid-storm even on fast profiles). The swap
builds a fresh engine - structural invalidation - and re-warms it from
the artifact, so the cached phase also proves the answer tier survives a
generation bump without serving anything stale.

Both phases use the keep-alive replay client and identical records, so
the p99 delta is the answer tier's doing. Gates:

* answer-tier hit ratio >= 0.5 under the overload replay;
* cached success p99 below the in-run uncached p99 *and* below the
  committed PR 7 ``BENCH_serve.json`` overload p99 (full profile only -
  a smoke run's numbers are not comparable to the committed baseline);
* cached answers bit-exact vs. uncached search over the differential
  seeds 7 and 1234 - results and the five deterministic work-stat
  fields - including after a reload generation bump, and a daemon-level
  spot check against a fresh engine after the mid-storm reload;
* zero 5xx anywhere, both reloads succeeded, generation 2 was observed
  inside the cached storm.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_answer_cache.py
    PYTHONPATH=src python benchmarks/bench_answer_cache.py --smoke
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import sys
import tempfile
import threading
from pathlib import Path
from time import monotonic
from typing import Dict, List

sys.path.insert(0, str(Path(__file__).parent))

from bench_serve import BenchDaemon, ReplayClient, simple_get  # noqa: E402

from repro.core import (  # noqa: E402
    PITEngine,
    ServingEngine,
    build_precompute,
    save_precompute,
    save_propagation_index,
    save_summaries,
)
from repro.datasets import data_2k, generate_workload, replay_requests  # noqa: E402
from repro.serve import ServeConfig  # noqa: E402

WORK_FIELDS = (
    "topics_considered",
    "topics_pruned",
    "entries_probed",
    "expansion_rounds",
    "representatives_touched",
)


def build_stack(seed: int, n_nodes: int, directory: Path, summarizer: str):
    """One dataset + artifacts, same shape as the serve bench / tests."""
    bundle = data_2k(seed=seed, n_nodes=n_nodes, with_corpus=False)
    engine = PITEngine.from_dataset(bundle, summarizer=summarizer, seed=seed)
    workers = max(1, min(4, os.cpu_count() or 1))
    engine.propagation_index.build_all(workers=workers)
    engine.build_summaries(workers=workers)
    index_path = directory / f"prop_{seed}.npz"
    sums_path = directory / f"sums_{seed}.json"
    save_propagation_index(engine.propagation_index, index_path)
    save_summaries(engine.summaries, bundle.graph, sums_path)
    return bundle, index_path, sums_path


def run_storm_with_reload(
    port: int, records: List[Dict], n_clients: int
) -> Dict:
    """Closed-loop replay that hot-reloads at the replay midpoint.

    Same worker loop as ``bench_serve.run_phase``, plus a helper thread
    that fires ``POST /admin/reload`` as soon as half the records have
    been claimed. Workers that claim a record past the midpoint wait for
    the swap to land before sending it, so the second half of the replay
    is guaranteed to run against generation 2 - even on profiles fast
    enough to drain the whole record list before an engine rebuild
    finishes. (Reload *under* full concurrent load is bench_serve's
    gate; this one proves the answer tier survives the bump.) The wait
    happens before each request's latency clock starts, so it does not
    pollute the percentiles.
    """
    lock = threading.Lock()
    cursor = {"i": 0}
    latencies: List[float] = []
    statuses: Dict[int, int] = {}
    generations = set()
    midpoint = threading.Event()
    reload_done = threading.Event()
    reload_result: Dict = {}

    def reloader():
        midpoint.wait()
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
        try:
            conn.request("POST", "/admin/reload", body="{}")
            response = conn.getresponse()
            reload_result["status"] = response.status
            reload_result["body"] = json.loads(response.read())
        except Exception as exc:  # surfaced through the reload gate
            reload_result["error"] = repr(exc)
        finally:
            conn.close()
            reload_done.set()

    def worker():
        client = ReplayClient(port)
        try:
            while True:
                with lock:
                    i = cursor["i"]
                    if i >= len(records):
                        return
                    cursor["i"] = i + 1
                if i >= len(records) // 2:
                    midpoint.set()
                    reload_done.wait()
                status, latency, generation = client.post_search(records[i])
                with lock:
                    statuses[status] = statuses.get(status, 0) + 1
                    if status == 200:
                        latencies.append(latency)
                        generations.add(generation)
        finally:
            client.close()

    reload_thread = threading.Thread(target=reloader)
    threads = [threading.Thread(target=worker) for _ in range(n_clients)]
    start = monotonic()
    reload_thread.start()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    midpoint.set()  # degenerate record counts: never leave the reloader hung
    reload_thread.join()
    elapsed = monotonic() - start
    latencies.sort()

    def pct(q: float) -> float:
        if not latencies:
            return 0.0
        return latencies[min(len(latencies) - 1, int(q * len(latencies)))]

    successes = statuses.get(200, 0)
    return {
        "clients": n_clients,
        "requests": len(records),
        "seconds": elapsed,
        "statuses": {str(k): v for k, v in sorted(statuses.items())},
        "success_count": successes,
        "shed_count": statuses.get(429, 0),
        "server_error_count": sum(v for k, v in statuses.items() if k >= 500),
        "success_qps": successes / elapsed if elapsed > 0 else 0.0,
        "mean_latency_ms": (
            1000.0 * sum(latencies) / len(latencies) if latencies else 0.0
        ),
        "p50_ms": 1000.0 * pct(0.50),
        "p99_ms": 1000.0 * pct(0.99),
        "generations_seen": sorted(g for g in generations if g is not None),
        "reload": reload_result,
    }


def work_tuple(stats) -> tuple:
    return tuple(getattr(stats, f) for f in WORK_FIELDS)


def engine_parity(
    bundle, index_path, sums_path, precompute_path, records, seed
) -> Dict:
    """Warm cached engine vs. fresh uncached engine, across a generation bump.

    Replays *records* against an answer-tier engine warm-loaded from the
    precompute artifact and a plain engine, comparing results and the
    deterministic work stats bit-exactly. Generation 2 repeats the check
    on a brand-new warm engine stamped with the next generation - exactly
    what the daemon's hot swap builds - proving nothing cached under an
    old generation can leak through the artifact path.
    """

    def fresh(cached: bool, generation: int) -> ServingEngine:
        engine = ServingEngine.from_artifacts(
            bundle.graph, bundle.topic_index, sums_path,
            index_path=index_path,
            answer_cache_bytes=(32 << 20) if cached else None,
            precompute_path=precompute_path if cached else None,
        )
        return engine.set_reload_generation(generation)

    plain = fresh(cached=False, generation=1)
    mismatches = 0
    warm_hits = 0
    for generation in (1, 2):
        warm = fresh(cached=True, generation=generation)
        for record in records:
            got = warm.search(
                record["user"], record["query"], record["k"], with_stats=True
            )
            want = plain.search(
                record["user"], record["query"], record["k"], with_stats=True
            )
            if got[0] != want[0] or work_tuple(got[1]) != work_tuple(want[1]):
                mismatches += 1
        warm_hits += warm.answer_cache_stats().hits
    return {
        "seed": seed,
        "n_requests_checked": 2 * len(records),
        "generations_checked": [1, 2],
        "mismatches": mismatches,
        "warm_engine_answer_hits": warm_hits,
        "ok": mismatches == 0,
    }


def daemon_spot_check(port: int, bundle, index_path, sums_path, records) -> Dict:
    """Post-reload daemon responses vs. a fresh uncached engine."""
    plain = ServingEngine.from_artifacts(
        bundle.graph, bundle.topic_index, sums_path, index_path=index_path
    )
    mismatches = 0
    checked = 0
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        for record in records:
            conn.request(
                "POST", "/search", body=json.dumps(record),
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            body = json.loads(response.read())
            if response.status != 200:
                continue  # sheds are not answers; nothing to compare
            checked += 1
            results, stats = plain.search(
                record["user"], record["query"], record["k"], with_stats=True
            )
            want = [
                {"topic_id": r.topic_id, "label": r.label,
                 "influence": r.influence}
                for r in results
            ]
            want_stats = {f: getattr(stats, f) for f in WORK_FIELDS}
            if body["results"] != want or body["stats"] != want_stats:
                mismatches += 1
    finally:
        conn.close()
    return {"checked": checked, "mismatches": mismatches,
            "ok": checked > 0 and mismatches == 0}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=600)
    parser.add_argument("--queries", type=int, default=12)
    parser.add_argument("--users", type=int, default=8)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--skew", type=float, default=1.1)
    parser.add_argument("--trace-requests", type=int, default=1200,
                        help="mined trace length (yesterday's traffic)")
    parser.add_argument("--overload-requests", type=int, default=900)
    parser.add_argument("--max-queue", type=int, default=16,
                        help="daemon admission capacity; the storm drives "
                             "2x this many client threads")
    parser.add_argument("--top-queries", type=int, default=8,
                        help="head plans precomputed (of --queries distinct)")
    parser.add_argument("--top-answers", type=int, default=64,
                        help="heavy-hitter answers precomputed (partial "
                             "coverage, so write-through is exercised too)")
    parser.add_argument("--parity-requests", type=int, default=200,
                        help="records replayed per seed in the parity check")
    parser.add_argument("--summarizer", default="rcl", choices=["lrw", "rcl"])
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--smoke", action="store_true", help="tiny CI profile")
    parser.add_argument("--output", default=None,
                        help="JSON destination (default: "
                             "benchmarks/BENCH_answer_cache.json)")
    parser.add_argument("--baseline", default=None,
                        help="BENCH_serve.json to gate the cached p99 "
                             "against (default: committed sibling)")
    args = parser.parse_args(argv)

    if args.smoke:
        args.nodes = min(args.nodes, 250)
        args.queries = min(args.queries, 5)
        args.users = min(args.users, 3)
        args.trace_requests = min(args.trace_requests, 300)
        args.overload_requests = min(args.overload_requests, 150)
        args.max_queue = min(args.max_queue, 4)
        args.top_queries = min(args.top_queries, 4)
        args.top_answers = min(args.top_answers, 12)
        args.parity_requests = min(args.parity_requests, 60)

    overload_clients = 2 * args.max_queue
    tmp = tempfile.TemporaryDirectory(prefix="bench_answer_cache_")
    directory = Path(tmp.name)

    print(f"dataset: data_2k({args.nodes} nodes), workload {args.queries} "
          f"queries x {args.users} users, skew={args.skew}, k={args.k}",
          flush=True)
    bundle, index_path, sums_path = build_stack(
        args.seed, args.nodes, directory, args.summarizer
    )

    workload = generate_workload(
        bundle, n_queries=args.queries, n_users=args.users, seed=args.seed
    )
    # Trace = past traffic (mined offline); replay = new traffic drawn
    # from the same Zipf mix with a different sampling seed.
    trace_records = replay_requests(
        workload, n_requests=args.trace_requests, k=args.k,
        skew=args.skew, seed=args.seed,
    )
    trace_path = directory / "trace.jsonl"
    trace_path.write_text(
        "".join(json.dumps(r) + "\n" for r in trace_records),
        encoding="utf-8",
    )
    replay_records = replay_requests(
        workload, n_requests=args.overload_requests, k=args.k,
        skew=args.skew, seed=args.seed + 1,
    )

    offline = ServingEngine.from_artifacts(
        bundle.graph, bundle.topic_index, sums_path, index_path=index_path
    )
    artifact = build_precompute(
        offline, trace_path,
        top_queries=args.top_queries, top_answers=args.top_answers,
        default_k=args.k,
    )
    precompute_path = directory / "precompute.json"
    save_precompute(artifact, precompute_path)
    print(f"precompute: {len(artifact.plans)} plans, "
          f"{len(artifact.answers)} answers from "
          f"{artifact.trace['n_records']} trace records "
          f"({artifact.trace['n_distinct_triples']} distinct triples)",
          flush=True)

    def run_storm(cached: bool) -> Dict:
        registry_holder = {}

        def loader(overrides):
            paths = {"summaries": str(sums_path), "index": str(index_path)}
            if cached:
                paths["precompute"] = str(precompute_path)
            paths.update(overrides)
            return ServingEngine.from_artifacts(
                bundle.graph, bundle.topic_index, paths["summaries"],
                index_path=paths.get("index"),
                answer_cache_bytes=(32 << 20) if cached else None,
                precompute_path=paths.get("precompute"),
                metrics=registry_holder["registry"],
            )

        daemon = BenchDaemon(loader, ServeConfig(
            port=0, max_queue=args.max_queue,
        ))
        registry_holder["registry"] = daemon.registry
        daemon.start()
        port = daemon.server.port

        phase = run_storm_with_reload(
            port, replay_records, n_clients=overload_clients
        )

        spot = None
        if cached:
            spot = daemon_spot_check(
                port, bundle, index_path, sums_path,
                replay_records[: min(40, len(replay_records))],
            )

        snapshot = daemon.registry.snapshot()
        hits = snapshot.counters.get("cache.tier.answers.hits", 0)
        misses = snapshot.counters.get("cache.tier.answers.misses", 0)
        lookups = hits + misses
        hit_hist = snapshot.histograms.get(
            "cache.tier.answers.hit_latency_seconds"
        )
        healthz_status, _ = simple_get(port, "/healthz")
        metrics_status, metrics_text = simple_get(port, "/metrics")
        exit_code = daemon.stop()
        return {
            "phase": phase,
            "spot_check": spot,
            "answer_hits": hits,
            "answer_misses": misses,
            "answer_hit_ratio": (hits / lookups) if lookups else 0.0,
            "answer_hit_p99_us": (
                1e6 * hit_hist.p99
                if hit_hist is not None and hit_hist.count else None
            ),
            "plan_hits": snapshot.counters.get("cache.tier.plans.hits", 0),
            "plan_misses": snapshot.counters.get("cache.tier.plans.misses", 0),
            "tier_gauges": {
                name: value
                for name, value in sorted(snapshot.gauges.items())
                if name.startswith("cache.tier.")
            },
            "healthz_ok": healthz_status == 200,
            "metrics_has_tier_family": (
                metrics_status == 200
                and b"cache_tier_answers" in metrics_text
            ),
            "exit_code": exit_code,
        }

    print(f"storm: {len(replay_records)} requests, {overload_clients} "
          f"clients vs queue {args.max_queue}, reload at replay midpoint",
          flush=True)
    uncached = run_storm(cached=False)
    print(f"uncached: {uncached['phase']['success_count']} ok, "
          f"{uncached['phase']['shed_count']} shed, "
          f"p99 {uncached['phase']['p99_ms']:.2f}ms", flush=True)
    cached = run_storm(cached=True)
    print(f"cached:   {cached['phase']['success_count']} ok, "
          f"{cached['phase']['shed_count']} shed, "
          f"p99 {cached['phase']['p99_ms']:.2f}ms, "
          f"answer hit ratio {cached['answer_hit_ratio']:.3f}", flush=True)

    # Differential parity over the two property-harness seeds.
    parity = {}
    for seed, n_nodes in ((7, 140), (1234, 120)):
        p_bundle, p_index, p_sums = build_stack(
            seed, n_nodes, directory, args.summarizer
        )
        p_workload = generate_workload(
            p_bundle, n_queries=max(4, args.queries // 2),
            n_users=max(3, args.users // 2), seed=seed,
        )
        p_trace = replay_requests(
            p_workload, n_requests=args.parity_requests, k=5,
            skew=args.skew, seed=seed,
        )
        p_trace_path = directory / f"trace_{seed}.jsonl"
        p_trace_path.write_text(
            "".join(json.dumps(r) + "\n" for r in p_trace), encoding="utf-8"
        )
        p_offline = ServingEngine.from_artifacts(
            p_bundle.graph, p_bundle.topic_index, p_sums, index_path=p_index
        )
        p_art = build_precompute(
            p_offline, p_trace_path,
            top_queries=args.top_queries, top_answers=args.top_answers,
            default_k=5,
        )
        p_pre_path = directory / f"precompute_{seed}.json"
        save_precompute(p_art, p_pre_path)
        parity[str(seed)] = engine_parity(
            p_bundle, p_index, p_sums, p_pre_path, p_trace, seed
        )
        print(f"parity seed {seed}: "
              f"{parity[str(seed)]['n_requests_checked']} checks across "
              f"generations {parity[str(seed)]['generations_checked']}, "
              f"{parity[str(seed)]['mismatches']} mismatches", flush=True)

    baseline_path = Path(
        args.baseline if args.baseline is not None
        else Path(__file__).parent / "BENCH_serve.json"
    )
    baseline_p99_ms = None
    if baseline_path.exists():
        baseline_p99_ms = json.loads(baseline_path.read_text())[
            "overload"]["p99_ms"]

    cached_p99 = cached["phase"]["p99_ms"]
    uncached_p99 = uncached["phase"]["p99_ms"]
    gates = {
        "answer_hit_ratio_ge_50pct": cached["answer_hit_ratio"] >= 0.5,
        "cached_p99_below_uncached": cached_p99 < uncached_p99,
        "cached_p99_below_pr7_baseline": (
            True if (args.smoke or baseline_p99_ms is None)
            else cached_p99 < baseline_p99_ms
        ),
        "parity_seed_7": parity["7"]["ok"],
        "parity_seed_1234": parity["1234"]["ok"],
        "daemon_spot_check_bit_exact": cached["spot_check"]["ok"],
        "no_server_errors": (
            uncached["phase"]["server_error_count"] == 0
            and cached["phase"]["server_error_count"] == 0
        ),
        "hot_reload_ok_both_phases": (
            uncached["phase"]["reload"].get("status") == 200
            and cached["phase"]["reload"].get("status") == 200
        ),
        "generation_bump_observed": 2 in cached["phase"]["generations_seen"],
        "metrics_expose_tier_family": cached["metrics_has_tier_family"],
        "clean_exits": (
            uncached["exit_code"] == 0 and cached["exit_code"] == 0
        ),
    }

    payload = {
        "benchmark": "answer_cache",
        "config": {
            "n_nodes": bundle.graph.n_nodes,
            "n_edges": bundle.graph.n_edges,
            "n_topics": bundle.topic_index.n_topics,
            "n_queries": args.queries,
            "n_users": args.users,
            "k": args.k,
            "skew": args.skew,
            "trace_requests": args.trace_requests,
            "overload_requests": args.overload_requests,
            "max_queue": args.max_queue,
            "overload_clients": overload_clients,
            "top_queries": args.top_queries,
            "top_answers": args.top_answers,
            "summarizer": args.summarizer,
            "seed": args.seed,
            "cpu_count": os.cpu_count(),
            "smoke": args.smoke,
        },
        "precompute": {
            "plans": len(artifact.plans),
            "answers": len(artifact.answers),
            "trace": artifact.trace,
            "warm_bytes": artifact.memory_hint_bytes(),
        },
        "uncached": uncached,
        "cached": cached,
        "p99_speedup": (
            uncached_p99 / cached_p99 if cached_p99 > 0 else None
        ),
        "baseline_pr7_p99_ms": baseline_p99_ms,
        "parity": parity,
        "gates": gates,
        "ok": all(gates.values()),
    }
    tmp.cleanup()

    output = Path(
        args.output if args.output is not None
        else Path(__file__).parent / "BENCH_answer_cache.json"
    )
    output.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {output}")
    if not payload["ok"]:
        failed = [name for name, ok in gates.items() if not ok]
        print(f"GATE FAILURE: {', '.join(failed)}", file=sys.stderr)
        return 1
    print(f"all gates passed: hit ratio {cached['answer_hit_ratio']:.3f}, "
          f"p99 {uncached_p99:.2f}ms -> {cached_p99:.2f}ms "
          f"({payload['p99_speedup']:.2f}x)", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
