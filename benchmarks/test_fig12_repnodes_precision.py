"""Figure 12 - precision vs the representative budget (data_3m).

Paper shape: RCL-A's precision improves as representatives increase
(0.75 -> 0.82 at 6000); LRW-A is already near its ceiling so extra
representatives help little.
"""

from .conftest import emit


def test_fig12_precision_vs_representatives(suite, benchmark):
    table = benchmark.pedantic(
        lambda: suite.fig12_repnodes_precision(
            rep_fractions=(0.05, 0.15, 0.3)
        ),
        rounds=1,
        iterations=1,
    )
    emit(table)
    rows = {row[0]: [float(c) for c in row[1:]] for row in table.rows}
    # More representatives never catastrophically hurt either summarizer.
    assert rows["LRW-A"][-1] >= rows["LRW-A"][0] - 0.2
    assert rows["RCL-A"][-1] >= rows["RCL-A"][0] - 0.2
