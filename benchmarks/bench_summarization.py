#!/usr/bin/env python
"""Offline summarization benchmark (Figures 5-9 offline cost).

Times the offline stage - Algorithm 5 (RCL-A) and Algorithm 9 (LRW-A)
summaries - on the seeded ``data_2k`` graph and writes
``BENCH_summarization.json``:

* ``rcl.scalar`` / ``lrw.scalar`` - the pre-PR per-node / per-pair /
  per-walk implementations, retained verbatim in
  :mod:`repro.core._scalar_summarize`;
* ``rcl.vectorized`` / ``lrw.vectorized`` - the bitset-reachability +
  popcount-grouping + array-native-migration pipelines.

RCL-A runs in exact bounded-BFS mode (``walk_index=None``), where the
packed reachability kernel replaces one reverse BFS per topic node;
LRW-A runs against a ``L=8, R=150`` walk index, where influence
migration dominates. Every benchmarked topic is summarized by both
paths and compared bit-exactly - identical representatives and weight
floats - and the benchmark exits 1 on any divergence, which is what
CI's ``--smoke`` run enforces. The full profile additionally gates each
summarizer's serial speedup at >= 5x (the PR's acceptance bar); smoke
sizes are too small for the ratio to be meaningful, so the smoke run
checks parity only.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_summarization.py
    PYTHONPATH=src python benchmarks/bench_summarization.py --smoke

``--smoke`` shrinks the graph and topic sample for CI: it proves the
harness runs, the JSON is valid, and the two paths agree.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from time import perf_counter
from typing import Dict, List

from repro.core._scalar_summarize import (
    ScalarLRWSummarizer,
    ScalarRCLSummarizer,
)
from repro.core.lrw import LRWSummarizer
from repro.core.rcl import RCLSummarizer
from repro.datasets import data_2k
from repro.obs import MetricsRegistry
from repro.walks import WalkIndex

MIN_SPEEDUP = 5.0  # acceptance bar for each summarizer, full profile only


def _bench_topics(n_topics: int, count: int) -> List[int]:
    """An evenly spread sample of *count* topic ids."""
    stride = max(1, n_topics // count)
    return list(range(0, n_topics, stride))[:count]


def _check_parity(vectorized, scalar, topics) -> Dict:
    """Summarize every topic on both paths; weights must be bit-exact."""
    max_weight_diff = 0.0
    mismatches: List[str] = []
    for topic_id in topics:
        got = dict(vectorized.summarize(topic_id).weights)
        want = dict(scalar.summarize(topic_id).weights)
        if set(got) != set(want):
            mismatches.append(
                f"topic {topic_id}: representative sets diverged "
                f"({sorted(set(got) ^ set(want))[:6]} ...)"
            )
            continue
        for rep, weight in want.items():
            diff = abs(got[rep] - weight)
            max_weight_diff = max(max_weight_diff, diff)
            if diff != 0.0:
                mismatches.append(
                    f"topic {topic_id}: weight of rep {rep} off by {diff:.3e}"
                )
    return {
        "topics": len(topics),
        "max_weight_diff": max_weight_diff,
        "mismatches": mismatches[:20],
        "ok": not mismatches,
    }


def _time_passes(summarizer, topics, passes: int) -> Dict[str, float]:
    """Best-of-*passes* wall time to summarize all *topics* serially."""
    best = float("inf")
    for _ in range(passes):
        start = perf_counter()
        for topic_id in topics:
            summarizer.summarize(topic_id)
        best = min(best, perf_counter() - start)
    return {
        "seconds": best,
        "topics": len(topics),
        "mean_ms_per_topic": 1000.0 * best / len(topics),
        "topics_per_second": len(topics) / best if best > 0 else 0.0,
    }


def _kernel_counters(vectorized, topics) -> Dict[str, float]:
    """The new obs counters observed over one instrumented pass."""
    registry = MetricsRegistry()
    vectorized.set_metrics(registry)
    try:
        for topic_id in topics:
            vectorized.summarize(topic_id)
    finally:
        vectorized.set_metrics(None)
    counters = registry.snapshot().counters
    return {
        name: counters[name]
        for name in (
            "summarize.grouping.pairs",
            "summarize.migration.absorptions",
        )
        if name in counters
    }


def _section(name, vectorized, scalar, topics, passes) -> Dict:
    # Warm once on each side: lazily built shared tables (walk paths,
    # hitting frequencies, transition matrices) must not skew a pass.
    vectorized.summarize(topics[0])
    scalar.summarize(topics[0])
    parity = _check_parity(vectorized, scalar, topics)
    status = "ok" if parity["ok"] else "FAILED"
    print(f"{name} parity: {status} over {parity['topics']} topics "
          f"(max weight diff {parity['max_weight_diff']:.2e})", flush=True)
    scalar_t = _time_passes(scalar, topics, passes)
    print(f"{name} scalar     : {scalar_t['mean_ms_per_topic']:8.2f} "
          f"ms/topic ({scalar_t['topics_per_second']:7.1f} topics/s)",
          flush=True)
    vec_t = _time_passes(vectorized, topics, passes)
    speedup = scalar_t["seconds"] / vec_t["seconds"]
    print(f"{name} vectorized : {vec_t['mean_ms_per_topic']:8.2f} "
          f"ms/topic ({vec_t['topics_per_second']:7.1f} topics/s, "
          f"{speedup:.2f}x)", flush=True)
    return {
        "scalar": scalar_t,
        "vectorized": vec_t,
        "speedup": speedup,
        "parity": parity,
        "counters": _kernel_counters(vectorized, topics),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=2000)
    parser.add_argument("--topics", type=int, default=24,
                        help="benchmarked topic sample size")
    parser.add_argument("--max-hops", type=int, default=4,
                        help="RCL-A reachability horizon")
    parser.add_argument("--sample-rate", type=float, default=0.05)
    parser.add_argument("--rep-fraction", type=float, default=0.1)
    parser.add_argument("--walk-length", type=int, default=8,
                        help="LRW-A walk index L")
    parser.add_argument("--samples-per-node", type=int, default=150,
                        help="LRW-A walk index R")
    parser.add_argument("--passes", type=int, default=3,
                        help="timing passes per path (best is kept)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI profile (300 nodes, 8 topics, "
                             "parity gate only)")
    parser.add_argument("--output", default=None,
                        help="JSON destination (default: "
                             "benchmarks/BENCH_summarization.json)")
    args = parser.parse_args(argv)

    if args.smoke:
        args.nodes = min(args.nodes, 300)
        args.topics = min(args.topics, 8)
        args.samples_per_node = min(args.samples_per_node, 25)
        args.walk_length = min(args.walk_length, 5)
        args.passes = min(args.passes, 2)

    bundle = data_2k(seed=args.seed, n_nodes=args.nodes, with_corpus=False)
    graph, topic_index = bundle.graph, bundle.topic_index
    topics = _bench_topics(topic_index.n_topics, args.topics)
    print(f"dataset: data_2k({graph.n_nodes} nodes, {graph.n_edges} edges, "
          f"{topic_index.n_topics} topics), benchmarking {len(topics)} "
          f"topics", flush=True)

    rcl_kwargs = dict(
        max_hops=args.max_hops, sample_rate=args.sample_rate,
        rep_fraction=args.rep_fraction, seed=args.seed,
    )
    rcl = _section(
        "RCL-A",
        RCLSummarizer(graph, topic_index, **rcl_kwargs),
        ScalarRCLSummarizer(graph, topic_index, **rcl_kwargs),
        topics, args.passes,
    )

    walk_index = WalkIndex(
        graph, args.walk_length, args.samples_per_node, seed=args.seed
    ).build()
    lrw = _section(
        "LRW-A",
        LRWSummarizer(
            graph, topic_index, walk_index, rep_fraction=args.rep_fraction
        ),
        ScalarLRWSummarizer(
            graph, topic_index, walk_index, rep_fraction=args.rep_fraction
        ),
        topics, args.passes,
    )

    payload = {
        "benchmark": "summarization",
        "config": {
            "n_nodes": graph.n_nodes,
            "n_edges": graph.n_edges,
            "n_topics": topic_index.n_topics,
            "benchmarked_topics": len(topics),
            "max_hops": args.max_hops,
            "sample_rate": args.sample_rate,
            "rep_fraction": args.rep_fraction,
            "walk_length": args.walk_length,
            "samples_per_node": args.samples_per_node,
            "passes": args.passes,
            "seed": args.seed,
            "cpu_count": os.cpu_count(),
            "smoke": args.smoke,
            "min_speedup": MIN_SPEEDUP,
        },
        "rcl": rcl,
        "lrw": lrw,
    }
    output = Path(
        args.output
        if args.output is not None
        else Path(__file__).parent / "BENCH_summarization.json"
    )
    output.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {output}")

    failed = False
    for name, section in (("RCL-A", rcl), ("LRW-A", lrw)):
        if not section["parity"]["ok"]:
            failed = True
            print(f"PARITY FAILURE between scalar and vectorized {name}",
                  file=sys.stderr)
            for line in section["parity"]["mismatches"]:
                print(f"  {line}", file=sys.stderr)
        if not args.smoke and section["speedup"] < MIN_SPEEDUP:
            failed = True
            print(f"{name} speedup {section['speedup']:.2f}x is below the "
                  f"{MIN_SPEEDUP:.0f}x bar", file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
