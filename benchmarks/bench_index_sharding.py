#!/usr/bin/env python
"""Sharded propagation-index benchmark: cold-open latency and bounded RSS.

Exercises the memory-mapped shard backend end-to-end on a seeded
synthetic graph and writes ``BENCH_index_sharding.json``. Each phase
runs in its own subprocess so ``ru_maxrss`` isolates that phase's peak
resident set:

* ``build-npz``     - in-memory ``build_all`` + single-NPZ save (the
  legacy path whose RSS grows with the whole index);
* ``build-sharded`` - streaming ``build_sharded`` (entries are freed as
  each shard is flushed, so peak RSS stays near one shard's worth);
* ``cold-open-npz`` - full NPZ parse into in-memory entries;
* ``cold-open-shard`` - manifest-only mmap open of the shard directory;
* ``serve``         - Zipf-distributed entry batch against the mmap
  backend under a small paging budget;
* ``baseline``      - graph load only, to net out interpreter + graph
  RSS from the serve gate.

Gates (enforced on full runs, recorded on ``--smoke``):

1. cold-open speedup: mmap open must be >= MIN_COLD_OPEN_SPEEDUP x
   faster than the full NPZ load;
2. bounded serving RSS: the serve phase's RSS over the graph-only
   baseline must stay under the paging budget plus a fixed slack, even
   though the mapped index is far larger — and the backend's own
   resident-shard accounting must stay within the budget exactly;
3. bit-exact parity: a digest over sampled entries (sources,
   probabilities, marked nodes, branch counts) must be identical
   between the NPZ and mmap backends.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_index_sharding.py
    PYTHONPATH=src python benchmarks/bench_index_sharding.py --smoke

``--smoke`` shrinks the graph for CI: it proves the harness, the
subprocess phases, and the parity digest work - not the speedup.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import resource
import subprocess
import sys
import tempfile
from pathlib import Path
from time import perf_counter

MIN_COLD_OPEN_SPEEDUP = 10.0
RSS_SLACK_BYTES = 64 << 20  # allocator + numpy scratch headroom

PARITY_SAMPLE = 97  # digest every 97th node (prime, so it strides shards)


def _maxrss_bytes() -> int:
    """Peak RSS of this process in bytes (Linux reports KiB)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def _entry_digest(index, n_nodes: int) -> str:
    sha = hashlib.sha256()
    for node in range(0, n_nodes, PARITY_SAMPLE):
        entry = index.entry(node)
        sha.update(entry.sources.tobytes())
        sha.update(entry.probabilities.tobytes())
        sha.update(entry.marked_array.tobytes())
        sha.update(entry.branches.to_bytes(8, "little"))
    return sha.hexdigest()


# --------------------------------------------------------------------------
# Subprocess phases - each prints one JSON line and exits.
# --------------------------------------------------------------------------


def _phase_build_npz(args) -> dict:
    from repro.core import PropagationIndex, save_propagation_index
    from repro.graph.io import load_npz

    graph = load_npz(args.workdir / "graph.npz")
    index = PropagationIndex(graph, args.theta)
    start = perf_counter()
    index.build_all(workers=1)
    save_propagation_index(index, args.workdir / "index.npz")
    return {
        "seconds": perf_counter() - start,
        "maxrss_bytes": _maxrss_bytes(),
        "index_bytes": index.memory_bytes(),
    }


def _phase_build_sharded(args) -> dict:
    from repro.core import PropagationIndex
    from repro.graph.io import load_npz

    graph = load_npz(args.workdir / "graph.npz")
    index = PropagationIndex(graph, args.theta)
    start = perf_counter()
    index.build_sharded(args.workdir / "shards", shard_nodes=args.shard_nodes)
    return {
        "seconds": perf_counter() - start,
        "maxrss_bytes": _maxrss_bytes(),
        "index_bytes": index.last_build_stats.total_bytes,
        "n_shards": len(list((args.workdir / "shards").glob("shard-*.bin"))),
    }


def _phase_cold_open_npz(args) -> dict:
    from repro.core import load_propagation_index
    from repro.graph.io import load_npz

    graph = load_npz(args.workdir / "graph.npz")
    start = perf_counter()
    index = load_propagation_index(args.workdir / "index.npz", graph)
    seconds = perf_counter() - start
    return {
        "seconds": seconds,
        "maxrss_bytes": _maxrss_bytes(),
        "entry_digest": _entry_digest(index, graph.n_nodes),
    }


def _phase_cold_open_shard(args) -> dict:
    from repro.core import load_sharded_index
    from repro.graph.io import load_npz

    graph = load_npz(args.workdir / "graph.npz")
    start = perf_counter()
    index = load_sharded_index(
        args.workdir / "shards", graph, cache_bytes=args.cache_mb << 20
    )
    seconds = perf_counter() - start
    return {
        "seconds": seconds,
        "maxrss_bytes": _maxrss_bytes(),
        "mapped_bytes": index.mapped_bytes(),
        "entry_digest": _entry_digest(index, graph.n_nodes),
    }


def _phase_serve(args) -> dict:
    import numpy as np

    from repro.core import load_sharded_index
    from repro.graph.io import load_npz
    from repro.obs import MetricsRegistry

    graph = load_npz(args.workdir / "graph.npz")
    registry = MetricsRegistry()
    index = load_sharded_index(
        args.workdir / "shards",
        graph,
        cache_bytes=args.cache_mb << 20,
        metrics=registry,
    )
    rng = np.random.default_rng(args.seed)
    # Zipf-distributed node popularity, shuffled so hot nodes scatter
    # across shards instead of clustering in shard 0.
    perm = rng.permutation(graph.n_nodes)
    ranks = rng.zipf(1.3, size=args.queries)
    nodes = perm[(ranks - 1) % graph.n_nodes]
    start = perf_counter()
    touched = 0
    for node in nodes:
        touched += index.entry(int(node)).size
    seconds = perf_counter() - start
    cache = index.shards.cache_stats()
    return {
        "seconds": seconds,
        "queries": int(args.queries),
        "queries_per_second": args.queries / seconds if seconds else 0.0,
        "members_touched": int(touched),
        "maxrss_bytes": _maxrss_bytes(),
        "mapped_bytes": index.mapped_bytes(),
        "resident_bytes": index.memory_bytes(),
        "cache": {
            "hits": cache.hits,
            "misses": cache.misses,
            "evictions": cache.evictions,
        },
    }


def _phase_baseline(args) -> dict:
    from repro.graph.io import load_npz

    graph = load_npz(args.workdir / "graph.npz")
    return {"maxrss_bytes": _maxrss_bytes(), "n_nodes": graph.n_nodes}


_PHASES = {
    "build-npz": _phase_build_npz,
    "build-sharded": _phase_build_sharded,
    "cold-open-npz": _phase_cold_open_npz,
    "cold-open-shard": _phase_cold_open_shard,
    "serve": _phase_serve,
    "baseline": _phase_baseline,
}


def _run_phase(name: str, args) -> dict:
    cmd = [
        sys.executable,
        __file__,
        "--phase",
        name,
        "--workdir",
        str(args.workdir),
        "--theta",
        str(args.theta),
        "--shard-nodes",
        str(args.shard_nodes),
        "--cache-mb",
        str(args.cache_mb),
        "--queries",
        str(args.queries),
        "--seed",
        str(args.seed),
    ]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise RuntimeError(f"phase {name} failed (exit {proc.returncode})")
    result = json.loads(proc.stdout.strip().splitlines()[-1])
    rss = result.get("maxrss_bytes")
    rss_mb = f", peak RSS {rss / (1 << 20):7.1f} MiB" if rss else ""
    seconds = result.get("seconds")
    timing = f"{seconds:8.3f}s" if seconds is not None else "        -"
    print(f"{name:16s}: {timing}{rss_mb}", flush=True)
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--phase", choices=sorted(_PHASES), default=None,
                        help=argparse.SUPPRESS)
    parser.add_argument("--workdir", type=Path, default=None,
                        help=argparse.SUPPRESS)
    parser.add_argument("--nodes", type=int, default=100_000)
    parser.add_argument("--out-degree", type=int, default=4)
    parser.add_argument("--theta", type=float, default=0.002)
    parser.add_argument("--shard-nodes", type=int, default=8192)
    parser.add_argument("--cache-mb", type=int, default=32,
                        help="shard paging budget for the serve phase")
    parser.add_argument("--queries", type=int, default=20_000)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI profile (2000 nodes, gates recorded "
                             "but not enforced)")
    parser.add_argument("--output", default=None,
                        help="JSON destination (default: "
                             "benchmarks/BENCH_index_sharding.json)")
    args = parser.parse_args(argv)

    if args.phase is not None:
        print(json.dumps(_PHASES[args.phase](args)))
        return 0

    if args.smoke:
        args.nodes = min(args.nodes, 2000)
        args.shard_nodes = min(args.shard_nodes, 256)
        args.cache_mb = min(args.cache_mb, 1)
        args.queries = min(args.queries, 2000)

    from repro.graph import preferential_attachment_graph
    from repro.graph.io import save_npz

    with tempfile.TemporaryDirectory(prefix="bench-shards-") as tmp:
        args.workdir = Path(tmp)
        print(f"graph: {args.nodes} nodes, out-degree {args.out_degree}, "
              f"theta {args.theta}, seed {args.seed}", flush=True)
        graph = preferential_attachment_graph(
            args.nodes, args.out_degree, seed=args.seed
        )
        save_npz(graph, args.workdir / "graph.npz")

        baseline = _run_phase("baseline", args)
        build_npz = _run_phase("build-npz", args)
        build_sharded = _run_phase("build-sharded", args)
        cold_npz = _run_phase("cold-open-npz", args)
        cold_shard = _run_phase("cold-open-shard", args)
        serve = _run_phase("serve", args)

    speedup = cold_npz["seconds"] / cold_shard["seconds"]
    serve_rss_over_baseline = serve["maxrss_bytes"] - baseline["maxrss_bytes"]
    rss_budget = (args.cache_mb << 20) + RSS_SLACK_BYTES
    parity_ok = cold_npz["entry_digest"] == cold_shard["entry_digest"]

    gates = {
        "cold_open_speedup": {
            "value": speedup,
            "min": MIN_COLD_OPEN_SPEEDUP,
            "ok": speedup >= MIN_COLD_OPEN_SPEEDUP,
        },
        "serve_rss_over_baseline_bytes": {
            "value": serve_rss_over_baseline,
            "max": rss_budget,
            "ok": serve_rss_over_baseline <= rss_budget,
        },
        "serve_resident_bytes": {
            "value": serve["resident_bytes"],
            "max": args.cache_mb << 20,
            "ok": serve["resident_bytes"] <= args.cache_mb << 20,
        },
        "parity": {
            "digest": cold_shard["entry_digest"],
            "ok": parity_ok,
        },
    }

    payload = {
        "benchmark": "index_sharding",
        "config": {
            "n_nodes": graph.n_nodes,
            "n_edges": graph.n_edges,
            "out_degree": args.out_degree,
            "theta": args.theta,
            "shard_nodes": args.shard_nodes,
            "cache_mb": args.cache_mb,
            "queries": args.queries,
            "seed": args.seed,
            "smoke": args.smoke,
        },
        "baseline": baseline,
        "build_npz": build_npz,
        "build_sharded": build_sharded,
        "cold_open_npz": cold_npz,
        "cold_open_shard": cold_shard,
        "serve": serve,
        "gates": gates,
    }
    output = Path(
        args.output
        if args.output is not None
        else Path(__file__).parent / "BENCH_index_sharding.json"
    )
    output.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {output}")

    print(f"cold-open speedup      : {speedup:8.2f}x "
          f"(gate >= {MIN_COLD_OPEN_SPEEDUP:.0f}x)")
    print(f"serve RSS over baseline: "
          f"{serve_rss_over_baseline / (1 << 20):8.1f} MiB "
          f"(gate <= {rss_budget / (1 << 20):.0f} MiB, "
          f"index {cold_shard['mapped_bytes'] / (1 << 20):.1f} MiB mapped)")
    print(f"serve resident shards  : "
          f"{serve['resident_bytes'] / (1 << 20):8.1f} MiB "
          f"(gate <= {args.cache_mb:.0f} MiB paging budget)")
    print(f"parity                 : {'ok' if parity_ok else 'FAILED'}")

    if not parity_ok:
        print("PARITY FAILURE between NPZ and mmap backends", file=sys.stderr)
        return 1
    if not args.smoke and not all(g["ok"] for g in gates.values()):
        print("GATE FAILURE (see gates in JSON payload)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
