"""Figure 7 - query time vs number of representative nodes (data_3m).

Paper shape: the baselines are flat in the representative budget; RCL-A and
LRW-A get slower as more representatives are materialized per topic
(70 ms at 1000 reps -> 600 ms at 6000 reps).
"""

from .test_fig05_time_small import _parse
from .conftest import emit


def test_fig07_time_vs_representatives(suite, benchmark):
    table = benchmark.pedantic(
        lambda: suite.fig07_repnodes_time(rep_fractions=(0.05, 0.15, 0.3)),
        rounds=1,
        iterations=1,
    )
    emit(table)
    rows = {row[0]: [_parse(c) for c in row[1:]] for row in table.rows}
    # The engines' work grows with the representative budget...
    assert rows["LRW-A"][-1] >= rows["LRW-A"][0] * 0.5
    # ...while remaining far below the exhaustive baseline at every budget.
    assert max(rows["LRW-A"]) < rows["BaseDijkstra"][0]
