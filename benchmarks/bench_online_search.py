#!/usr/bin/env python
"""Online search benchmark (Figures 5-9 online cost, serving edition).

Times the online stage - Algorithm 10 with Algorithm 11's Expand - on a
seeded ``data_2k``-style workload and writes ``BENCH_online_search.json``:

* ``scalar`` - the pre-PR per-representative hash-probe implementation,
  retained verbatim in :mod:`repro.core._scalar_search`, one request at a
  time;
* ``vectorized`` - the array-native
  :class:`~repro.core.search.PersonalizedSearcher`, one request at a time
  (compiled query plans warm, as in steady-state serving);
* ``batched`` - the same searcher through
  :meth:`~repro.core.engine.PITEngine.search_batch`, requests grouped by
  keyword query.

Both sides share one propagation index and one summary store, pre-warmed
before timing, so the numbers isolate the search computation itself.
Every request is answered by both paths and compared - identical
rankings, influences (<= 1e-12), and work stats - and the benchmark exits
1 on any divergence, which is what CI's ``--smoke`` run enforces. It also
times the warm single-request loop with metrics disabled
(:func:`repro.obs.null_registry`) versus a live
:class:`~repro.obs.MetricsRegistry` and fails when instrumentation adds
more than 5% (``instrumentation_overhead`` in the JSON).

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_online_search.py
    PYTHONPATH=src python benchmarks/bench_online_search.py --smoke

``--smoke`` shrinks the dataset for CI: it proves the harness runs, the
JSON is valid, and the two paths agree, not a meaningful speedup.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from time import perf_counter
from typing import Dict, List, Tuple

from repro.core import PITEngine
from repro.core._scalar_search import ScalarReferenceSearcher
from repro.datasets import data_2k, generate_workload
from repro.obs import MetricsRegistry, null_registry

OVERHEAD_LIMIT = 0.05  # instrumented serving may cost at most 5% extra

STAT_FIELDS = (
    "topics_considered",
    "topics_pruned",
    "entries_probed",
    "expansion_rounds",
    "representatives_touched",
)


def _check_parity(requests, k, scalar, engine) -> Dict:
    """Run every request on both paths; report the worst divergence."""
    max_influence_diff = 0.0
    mismatches: List[str] = []
    batched = engine.search_batch(requests, k=k, with_stats=True)
    for (user, query), (vec_results, vec_stats) in zip(requests, batched):
        ref_results, ref_stats = scalar.search(user, query, k)
        single_results, single_stats = engine._searcher.search(user, query, k)
        for tag, results, stats in (
            ("batched", vec_results, vec_stats),
            ("single", single_results, single_stats),
        ):
            if [(r.topic_id, r.label) for r in results] != [
                (r.topic_id, r.label) for r in ref_results
            ]:
                mismatches.append(
                    f"{tag} ranking diverged for user={user} query={query.raw!r}"
                )
                continue
            for got, want in zip(results, ref_results):
                diff = abs(got.influence - want.influence)
                max_influence_diff = max(max_influence_diff, diff)
                if diff > 1e-12:
                    mismatches.append(
                        f"{tag} influence off by {diff:.3e} for user={user} "
                        f"query={query.raw!r} topic={got.label}"
                    )
            for name in STAT_FIELDS:
                if getattr(stats, name) != getattr(ref_stats, name):
                    mismatches.append(
                        f"{tag} {name} {getattr(stats, name)} != "
                        f"{getattr(ref_stats, name)} for user={user} "
                        f"query={query.raw!r}"
                    )
    return {
        "requests": len(requests),
        "max_influence_diff": max_influence_diff,
        "mismatches": mismatches[:20],
        "ok": not mismatches,
    }


def _time_passes(run, n_requests: int, passes: int) -> Dict[str, float]:
    """Best-of-*passes* wall time for *run*; latency and QPS per request."""
    best = float("inf")
    for _ in range(passes):
        start = perf_counter()
        run()
        best = min(best, perf_counter() - start)
    return {
        "seconds": best,
        "requests": n_requests,
        "mean_latency_ms": 1000.0 * best / n_requests,
        "qps": n_requests / best if best > 0 else 0.0,
    }


def _measure_overhead(engine, requests, k: int, passes: int) -> Dict:
    """Serving cost with metrics disabled vs a live registry.

    Both sides run the same warm single-request loop best-of-*passes*;
    the only difference is the registry routed through
    :meth:`PITEngine.set_metrics`. The instrumented side pays the real
    hot-path cost (two clock reads, one histogram observe, six counter
    adds per search), which must stay under ``OVERHEAD_LIMIT``.
    """

    def run():
        for user, query in requests:
            engine._searcher.search(user, query, k)

    try:
        engine.set_metrics(null_registry())
        disabled = _time_passes(run, len(requests), passes)
        engine.set_metrics(MetricsRegistry())
        instrumented = _time_passes(run, len(requests), passes)
    finally:
        engine.set_metrics(None)
    overhead = (
        instrumented["seconds"] / disabled["seconds"] - 1.0
        if disabled["seconds"] > 0
        else 0.0
    )
    return {
        "disabled": disabled,
        "instrumented": instrumented,
        "overhead_fraction": overhead,
        "limit": OVERHEAD_LIMIT,
        "ok": overhead < OVERHEAD_LIMIT,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=2000)
    parser.add_argument("--queries", type=int, default=20,
                        help="distinct keyword queries in the workload")
    parser.add_argument("--users", type=int, default=10,
                        help="query users (workload = queries x users)")
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--theta", type=float, default=0.002)
    parser.add_argument("--summarizer", default="lrw", choices=["lrw", "rcl"])
    parser.add_argument("--passes", type=int, default=3,
                        help="timing passes per path (best is kept)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI profile (300 nodes, 5x3 workload)")
    parser.add_argument("--output", default=None,
                        help="JSON destination (default: "
                             "benchmarks/BENCH_online_search.json)")
    args = parser.parse_args(argv)

    if args.smoke:
        args.nodes = min(args.nodes, 300)
        args.queries = min(args.queries, 5)
        args.users = min(args.users, 3)
        args.passes = min(args.passes, 2)

    print(f"dataset: data_2k({args.nodes} nodes), workload "
          f"{args.queries} queries x {args.users} users, k={args.k}",
          flush=True)
    bundle = data_2k(seed=args.seed, n_nodes=args.nodes, with_corpus=True)
    engine = PITEngine.from_dataset(
        bundle,
        summarizer=args.summarizer,
        theta=args.theta,
        seed=args.seed,
        entry_cache_bytes=64 << 20,
        summary_cache_bytes=8 << 20,
    )
    scalar = ScalarReferenceSearcher(
        engine.topic_index, engine.summary, engine.propagation_index
    )
    workload = generate_workload(
        bundle, n_queries=args.queries, n_users=args.users, seed=args.seed
    )
    requests: List[Tuple[int, object]] = list(workload.pairs())

    # Warm both paths: builds every propagation entry and summary the
    # workload touches (shared), plus the vectorized side's compiled
    # plans and array caches - steady-state serving conditions.
    for user, query in requests:
        scalar.search(user, query, args.k)
    engine.search_batch(requests, k=args.k)

    parity = _check_parity(requests, args.k, scalar, engine)
    status = "ok" if parity["ok"] else "FAILED"
    print(f"parity: {status} over {parity['requests']} requests "
          f"(max influence diff {parity['max_influence_diff']:.2e})",
          flush=True)

    def run_scalar():
        for user, query in requests:
            scalar.search(user, query, args.k)

    def run_single():
        for user, query in requests:
            engine._searcher.search(user, query, args.k)

    def run_batched():
        engine.search_batch(requests, k=args.k)

    scalar_t = _time_passes(run_scalar, len(requests), args.passes)
    print(f"scalar     : {scalar_t['mean_latency_ms']:8.3f} ms/query "
          f"({scalar_t['qps']:8.1f} QPS)", flush=True)
    single_t = _time_passes(run_single, len(requests), args.passes)
    print(f"vectorized : {single_t['mean_latency_ms']:8.3f} ms/query "
          f"({single_t['qps']:8.1f} QPS, "
          f"{scalar_t['seconds'] / single_t['seconds']:.2f}x)", flush=True)
    batched_t = _time_passes(run_batched, len(requests), args.passes)
    print(f"batched    : {batched_t['mean_latency_ms']:8.3f} ms/query "
          f"({batched_t['qps']:8.1f} QPS, "
          f"{scalar_t['seconds'] / batched_t['seconds']:.2f}x)", flush=True)

    overhead = _measure_overhead(
        engine, requests, args.k, max(args.passes, 5)
    )
    print(f"metrics overhead: {100.0 * overhead['overhead_fraction']:+.2f}% "
          f"(limit {100.0 * OVERHEAD_LIMIT:.0f}%, "
          f"{'ok' if overhead['ok'] else 'FAILED'})", flush=True)

    payload = {
        "benchmark": "online_search",
        "config": {
            "n_nodes": bundle.graph.n_nodes,
            "n_edges": bundle.graph.n_edges,
            "n_topics": bundle.topic_index.n_topics,
            "n_queries": args.queries,
            "n_users": args.users,
            "n_requests": len(requests),
            "k": args.k,
            "theta": args.theta,
            "summarizer": args.summarizer,
            "passes": args.passes,
            "seed": args.seed,
            "cpu_count": os.cpu_count(),
            "smoke": args.smoke,
        },
        "scalar": scalar_t,
        "vectorized_single": single_t,
        "vectorized_batched": batched_t,
        "speedup": {
            "single_vs_scalar": scalar_t["seconds"] / single_t["seconds"],
            "batched_vs_scalar": scalar_t["seconds"] / batched_t["seconds"],
            "batched_qps_vs_scalar_qps":
                batched_t["qps"] / scalar_t["qps"] if scalar_t["qps"] else 0.0,
        },
        "cache_stats": [c.as_dict() for c in engine.cache_stats()],
        "parity": parity,
        "instrumentation_overhead": overhead,
    }
    output = Path(
        args.output
        if args.output is not None
        else Path(__file__).parent / "BENCH_online_search.json"
    )
    output.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {output}")

    if not parity["ok"]:
        print("PARITY FAILURE between scalar and vectorized search",
              file=sys.stderr)
        for line in parity["mismatches"]:
            print(f"  {line}", file=sys.stderr)
        return 1
    if not overhead["ok"]:
        print(
            f"INSTRUMENTATION OVERHEAD "
            f"{100.0 * overhead['overhead_fraction']:.2f}% exceeds the "
            f"{100.0 * OVERHEAD_LIMIT:.0f}% budget",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
