#!/usr/bin/env python
"""Dynamics benchmark: streamed graph deltas vs. from-scratch rebuild.

Exercises the incremental-dynamics path end to end and gates it on both
correctness and cost:

* **Perf leg** - one serving stack at benchmark scale streams a run of
  small delta batches. Each batch is applied twice, conceptually: once
  through :meth:`ServingEngine.apply_delta` (theta-closure affected set,
  targeted entry rebuild, surgical cache trims) and once as the
  operational alternative - a single-threaded from-scratch
  ``PropagationIndex.build_all`` over the post-delta graph. The summed
  costs must show **>= 5x reduction** (full profile; a smoke run's
  scale cannot support the ratio and reports it ungated). After the
  stream, every one of the n entries in the delta-maintained index is
  compared bit for bit against the final from-scratch index.

* **Parity legs** - the differential-harness seeds 7 and 1234 (memory
  backend both, plus a sharded-backend arm) warm an answer tier, stream
  a delta, then check every warmed request against a from-scratch
  ``ServingEngine`` over (new graph, same summaries): results and the
  five deterministic work-stat fields must match exactly, so a stale
  answer can never be served.

* **Surgical invalidation** - verified against a brute-force oracle:
  every warmed query whose from-scratch answer actually changed must
  come back changed (never the stale cached value), while at least one
  unchanged answer must still be served straight from the answer tier
  (a hit, not a recompute) - trimming, not clearing.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_dynamics.py
    PYTHONPATH=src python benchmarks/bench_dynamics.py --smoke
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
from pathlib import Path
from time import monotonic
from typing import Dict, List, Tuple

import numpy as np

from repro.core import (
    GraphDelta,
    PITEngine,
    ServingEngine,
    apply_delta_to_graph,
)
from repro.core.propagation import PropagationIndex
from repro.core.shards import load_sharded_index, save_sharded_index
from repro.datasets import data_2k
from repro.obs import MetricsRegistry

WORK_FIELDS = (
    "topics_considered",
    "topics_pruned",
    "entries_probed",
    "expansion_rounds",
    "representatives_touched",
)

QUERY_TERMS = ("phone", "camera", "music", "laptop", "tv")


def work_tuple(stats) -> Tuple[int, ...]:
    return tuple(getattr(stats, field) for field in WORK_FIELDS)


def make_batches(
    graph, n: int, seed: int, count: int, per: int
) -> List[GraphDelta]:
    """A deterministic stream of delta batches against *graph*.

    Each batch deletes, reweights, and inserts *per* edges apiece,
    drawn from the graph state the previous batch left behind - the
    same shape the evolving-network scenario drives.
    """
    rng = np.random.default_rng(seed + 11)
    batches: List[GraphDelta] = []
    g = graph
    for _ in range(count):
        src, dst, probs = g.edge_arrays()
        picks = rng.choice(src.size, size=2 * per, replace=False)
        deletes = [(int(src[i]), int(dst[i])) for i in picks[:per]]
        reweights = [
            (
                int(src[i]),
                int(dst[i]),
                round(float(probs[i]) * 0.5 + 0.05, 6),
            )
            for i in picks[per : 2 * per]
        ]
        taken = set((src.astype(np.int64) * n + dst).tolist())
        inserts: List[Tuple[int, int, float]] = []
        while len(inserts) < per:
            a, b = int(rng.integers(n)), int(rng.integers(n))
            if a != b and a * n + b not in taken:
                taken.add(a * n + b)
                inserts.append(
                    (a, b, round(float(rng.uniform(0.05, 0.4)), 6))
                )
        delta = GraphDelta(
            inserts=tuple(inserts),
            deletes=tuple(deletes),
            reweights=tuple(reweights),
        )
        batches.append(delta)
        g, _ = apply_delta_to_graph(g, delta)
    return batches


def same_entry(a, b) -> bool:
    return (
        np.array_equal(a.sources, b.sources)
        and np.array_equal(a.probabilities, b.probabilities)
        and np.array_equal(a.marked_array, b.marked_array)
    )


def perf_leg(
    seed: int,
    n_nodes: int,
    theta: float,
    n_batches: int,
    per: int,
    workers: int,
) -> Dict:
    """Stream deltas and time them against from-scratch rebuilds.

    Summaries are irrelevant to the index-refresh cost, so the stack is
    built without them; the parity legs cover the search path.
    """
    bundle = data_2k(seed=seed, n_nodes=n_nodes, with_corpus=False)
    engine = PITEngine.from_dataset(bundle, summarizer="rcl", seed=seed)
    index = PropagationIndex(
        bundle.graph,
        theta,
        max_branches=engine.propagation_index.max_branches,
        strict=engine.propagation_index.strict,
    )
    index.build_all(workers=workers)
    serving = ServingEngine(
        bundle.graph,
        bundle.topic_index,
        {},
        index,
        answer_cache_bytes=1 << 20,
    )
    batches = make_batches(bundle.graph, n_nodes, seed, n_batches, per)
    delta_seconds = 0.0
    scratch_seconds = 0.0
    affected_sizes: List[int] = []
    entries_rebuilt = 0
    scratch = None
    for delta in batches:
        start = monotonic()
        report = serving.apply_delta(delta)
        delta_seconds += monotonic() - start
        affected_sizes.append(report["affected"])
        entries_rebuilt += report.get("entries_rebuilt", report["affected"])
        start = monotonic()
        scratch = PropagationIndex(
            serving.graph,
            theta,
            max_branches=index.max_branches,
            strict=index.strict,
        )
        scratch.build_all(workers=1)
        scratch_seconds += monotonic() - start
    mismatches = sum(
        1
        for node in range(n_nodes)
        if not same_entry(
            serving.propagation_index.entry(node), scratch.entry(node)
        )
    )
    return {
        "n_nodes": n_nodes,
        "n_edges": serving.graph.n_edges,
        "theta": theta,
        "n_batches": n_batches,
        "edits_per_batch": 3 * per,
        "affected_sizes": affected_sizes,
        "entries_rebuilt": entries_rebuilt,
        "delta_ms_per_batch": 1000.0 * delta_seconds / n_batches,
        "scratch_ms_per_batch": 1000.0 * scratch_seconds / n_batches,
        "speedup": (
            scratch_seconds / delta_seconds if delta_seconds > 0 else None
        ),
        "entry_mismatches": mismatches,
    }


def parity_leg(
    seed: int,
    n_nodes: int,
    theta: float,
    arm: str,
    directory: Path,
    workers: int,
) -> Dict:
    """Warm an answer tier, stream a delta, and verify against oracles.

    Checks three properties per warmed request: bit-exact parity with a
    from-scratch engine (results + work stats), never-stale against the
    brute-force per-query oracle, and at least one surviving answer-tier
    hit (surgical, not clear-all).
    """
    bundle = data_2k(seed=seed, n_nodes=n_nodes, with_corpus=False)
    engine = PITEngine.from_dataset(
        bundle, summarizer="rcl", seed=seed, theta=theta
    )
    engine.propagation_index.build_all(workers=workers)
    engine.build_summaries(workers=workers)
    if arm == "sharded":
        shard_dir = directory / f"shards_{seed}"
        save_sharded_index(engine.propagation_index, shard_dir, shard_nodes=16)
        index = load_sharded_index(
            shard_dir, bundle.graph, cache_bytes=1 << 20
        )
    else:
        index = engine.propagation_index
    registry = MetricsRegistry()
    serving = ServingEngine(
        bundle.graph,
        bundle.topic_index,
        engine.summaries,
        index,
        answer_cache_bytes=1 << 20,
        metrics=registry,
    )
    rng = np.random.default_rng(seed)
    requests = sorted(
        {
            (int(rng.integers(n_nodes)), term)
            for term in QUERY_TERMS
            for _ in range(4)
        }
    )
    before = {
        req: serving.search(req[0], req[1], k=5, with_stats=True)
        for req in requests
    }
    batches = make_batches(bundle.graph, n_nodes, seed, 1, 3)
    report = serving.apply_delta(batches[0])
    oracle = ServingEngine(
        serving.graph,
        bundle.topic_index,
        engine.summaries,
        theta=theta,
    )
    hits_before = registry.snapshot().counters.get(
        "cache.tier.answers.hits", 0
    )
    mismatches = 0
    stale_served = 0
    changed = 0
    for req in requests:
        got = serving.search(req[0], req[1], k=5, with_stats=True)
        want = oracle.search(req[0], req[1], k=5, with_stats=True)
        if got[0] != want[0] or work_tuple(got[1]) != work_tuple(want[1]):
            mismatches += 1
        if want[0] != before[req][0]:
            changed += 1
            if got[0] == before[req][0]:
                stale_served += 1
    hits_after = registry.snapshot().counters.get(
        "cache.tier.answers.hits", 0
    )
    surviving_hits = int(hits_after - hits_before)
    return {
        "seed": seed,
        "n_nodes": n_nodes,
        "arm": arm,
        "requests_checked": len(requests),
        "affected": report["affected"],
        "reachable": report["reachable"],
        "answers_invalidated": report["answers_invalidated"],
        "answers_changed_by_delta": changed,
        "mismatches": mismatches,
        "stale_served": stale_served,
        "surviving_answer_hits": surviving_hits,
        "ok": (
            mismatches == 0 and stale_served == 0 and surviving_hits > 0
        ),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small fast profile; perf ratio reported "
                             "but not gated")
    parser.add_argument("--output", default=None,
                        help="output JSON path (default BENCH_dynamics.json "
                             "next to this script)")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    workers = max(1, min(4, os.cpu_count() or 1))
    if args.smoke:
        perf_nodes, perf_batches = 600, 3
        parity_nodes = {7: 140, 1234: 120}
    else:
        perf_nodes, perf_batches = 4000, 6
        parity_nodes = {7: 600, 1234: 500}
    theta = 0.02

    print(f"perf leg: n={perf_nodes}, {perf_batches} batches of 3 edits, "
          f"theta={theta}", flush=True)
    perf = perf_leg(args.seed, perf_nodes, theta, perf_batches, 1, workers)
    print(f"perf: delta {perf['delta_ms_per_batch']:.1f}ms/batch vs "
          f"scratch {perf['scratch_ms_per_batch']:.1f}ms/batch "
          f"({perf['speedup']:.1f}x), "
          f"{perf['entry_mismatches']} entry mismatches", flush=True)

    tmp = tempfile.TemporaryDirectory(prefix="bench_dynamics_")
    directory = Path(tmp.name)
    parity = {}
    for seed, arm in ((7, "memory"), (1234, "memory"), (7, "sharded")):
        leg = parity_leg(
            seed, parity_nodes[seed], theta, arm, directory, workers
        )
        parity[f"{arm}_{seed}"] = leg
        print(f"parity {arm} seed {seed}: {leg['requests_checked']} checks, "
              f"{leg['mismatches']} mismatches, {leg['stale_served']} stale, "
              f"{leg['surviving_answer_hits']} surviving hits "
              f"({leg['answers_changed_by_delta']} answers moved)",
              flush=True)
    tmp.cleanup()

    gates = {
        "entry_parity_at_scale": perf["entry_mismatches"] == 0,
        "parity_memory_seed_7": parity["memory_7"]["ok"],
        "parity_memory_seed_1234": parity["memory_1234"]["ok"],
        "parity_sharded_seed_7": parity["sharded_7"]["ok"],
        "never_served_stale": all(
            leg["stale_served"] == 0 for leg in parity.values()
        ),
        "surgical_survivors_everywhere": all(
            leg["surviving_answer_hits"] > 0 for leg in parity.values()
        ),
        "delta_speedup_ge_5x": (
            True if args.smoke else perf["speedup"] >= 5.0
        ),
    }
    payload = {
        "benchmark": "dynamics",
        "config": {
            "seed": args.seed,
            "theta": theta,
            "perf_nodes": perf_nodes,
            "perf_batches": perf_batches,
            "parity_nodes": parity_nodes,
            "cpu_count": os.cpu_count(),
            "smoke": args.smoke,
        },
        "perf": perf,
        "parity": parity,
        "gates": gates,
        "ok": all(gates.values()),
    }
    output = Path(
        args.output if args.output is not None
        else Path(__file__).parent / "BENCH_dynamics.json"
    )
    output.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {output}")
    if not payload["ok"]:
        failed = [name for name, ok in gates.items() if not ok]
        print(f"GATE FAILURE: {', '.join(failed)}", file=sys.stderr)
        return 1
    print(f"all gates passed: {perf['speedup']:.1f}x cost reduction, "
          f"0 mismatches across {perf['n_nodes']} entries and "
          f"{sum(l['requests_checked'] for l in parity.values())} "
          f"warmed requests", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
