"""Ablation bench for the interpretation choices DESIGN.md section 5 records.

Quantifies, on the data_2k bundle against the BaseMatrix ground truth:

* LRW Algorithm 7 knobs - restart vs literal-uniform initialization,
  DivRank self-reinforcement vs the literal walk-table ``H``, topic-node
  vs unrestricted candidate pools;
* RCL ``CHECK_GROUPING`` policy - clique (``all``) vs chain (``any``).
"""

import numpy as np
import pytest

from repro.baselines import BaseMatrixRanker
from repro.core import propagate_influence
from repro.core.lrw import LRWSummarizer
from repro.core.rcl import RCLSummarizer
from repro.datasets import data_2k, generate_workload
from repro.evaluation import Table, precision_at_k
from repro.walks import WalkIndex

from .conftest import emit

K = 5


@pytest.fixture(scope="module")
def stack():
    bundle = data_2k(seed=7, n_nodes=1200, with_corpus=False)
    workload = generate_workload(bundle, n_queries=2, n_users=2, seed=8)
    truth = BaseMatrixRanker(
        bundle.graph, bundle.topic_index, cache_vectors=True
    )
    walk_index = WalkIndex.built(
        bundle.graph, walk_length=5, samples_per_node=15, seed=9
    )
    return bundle, workload, truth, walk_index


def _summary_precision(bundle, workload, truth, summarizer):
    """Exact-propagation precision of a summarizer's summaries."""
    graph, topic_index = bundle.graph, bundle.topic_index
    cache = {}

    def rank(user, query):
        scores = {}
        for topic in topic_index.related_topics(query):
            if topic not in cache:
                summary = summarizer.summarize(topic)
                cache[topic] = propagate_influence(
                    graph, dict(summary.weights), 6
                )
            scores[topic] = cache[topic][user]
        ranked = sorted(
            scores, key=lambda t: (-scores[t], topic_index.label(t))
        )
        return ranked[:K]

    values = [
        precision_at_k(rank(user, query), truth.search(user, query, K), K)
        for user, query in workload.pairs()
    ]
    return float(np.mean(values))


def test_ablation_lrw_interpretations(stack, benchmark):
    bundle, workload, truth, walk_index = stack
    variants = [
        ("default (restart/divrank/topic)", {}),
        ("literal init (uniform)", {"initial": "uniform"}),
        ("literal reinforcement (walk H)", {"reinforcement": "walk"}),
        ("unrestricted candidates", {"candidates": "all"}),
    ]

    def run():
        table = Table(
            "Ablation - LRW-A Algorithm 7 interpretation knobs (data_2k)",
            ["variant", f"precision@{K}"],
        )
        for label, kwargs in variants:
            summarizer = LRWSummarizer(
                bundle.graph, bundle.topic_index, walk_index,
                rep_fraction=0.1, **kwargs,
            )
            table.add_row([
                label,
                f"{_summary_precision(bundle, workload, truth, summarizer):.3f}",
            ])
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(table)
    scores = {row[0]: float(row[1]) for row in table.rows}
    default = scores["default (restart/divrank/topic)"]
    # Precision deltas between knob settings are seed-noisy at bench
    # scale; the robust claim is that the default never collapses and the
    # unrestricted candidate pool never dominates it (that is the variant
    # whose representatives are downstream hubs detached from the topic).
    assert default > 0.1
    assert default >= scores["unrestricted candidates"] - 0.15


def test_ablation_rcl_grouping_policy(stack, benchmark):
    bundle, workload, truth, walk_index = stack

    def run():
        table = Table(
            "Ablation - RCL-A CHECK_GROUPING policy (data_2k)",
            ["policy", f"precision@{K}"],
        )
        for policy in ("all", "any"):
            summarizer = RCLSummarizer(
                bundle.graph, bundle.topic_index,
                max_hops=5, sample_rate=0.05, rep_fraction=0.1,
                walk_index=walk_index, policy=policy, seed=10,
            )
            table.add_row([
                policy,
                f"{_summary_precision(bundle, workload, truth, summarizer):.3f}",
            ])
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(table)
    scores = {row[0]: float(row[1]) for row in table.rows}
    assert all(v >= 0.0 for v in scores.values())
